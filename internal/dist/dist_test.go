package dist

import (
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/netsim"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/workload"
)

// netsimStar shortens topology construction in tests.
func netsimStar(sites int, hub db.SiteID, link sim.Duration) (*netsim.Topology, error) {
	return netsim.Star(sites, hub, link)
}

func cfg(a Approach, delay sim.Duration) Config {
	return Config{
		Approach:  a,
		Sites:     3,
		Objects:   30, // 10 per site
		CommDelay: delay,
		CPUPerObj: 10 * sim.Millisecond,
	}
}

// mkDistTxn builds a transaction homed at a site with explicit ops.
func mkDistTxn(id int64, home db.SiteID, arrival, deadline sim.Time, ops []workload.Op) *workload.Txn {
	kind := workload.Update
	ro := true
	for _, op := range ops {
		if op.Mode == core.Write {
			ro = false
		}
	}
	if ro {
		kind = workload.ReadOnly
	}
	return &workload.Txn{ID: id, Kind: kind, Home: home, Arrival: arrival, Deadline: deadline, Ops: ops}
}

func TestClusterValidation(t *testing.T) {
	bad := []Config{
		{},
		{Approach: GlobalCeiling, Sites: 0, Objects: 10, CPUPerObj: 1},
		{Approach: GlobalCeiling, Sites: 3, Objects: 0, CPUPerObj: 1},
		{Approach: GlobalCeiling, Sites: 3, Objects: 10, CPUPerObj: 0},
		{Approach: GlobalCeiling, Sites: 3, Objects: 10, CPUPerObj: 1, GCMSite: 5},
		{Approach: GlobalCeiling, Sites: 3, Objects: 10, CPUPerObj: 1, CommDelay: -1},
	}
	for i, c := range bad {
		if _, err := NewCluster(c); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestGlobalLockRoundTripCost(t *testing.T) {
	c, err := NewCluster(cfg(GlobalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Site 1's primary partition is objects 10..19. One write op on a
	// home-local object: lock round trip (10ms) + local CPU (10ms).
	tx := mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{{Obj: 10, Mode: core.Write}})
	c.Load([]*workload.Txn{tx})
	sum := c.Run()
	if sum.Committed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	rec := c.Monitor.Records()[0]
	if rec.Finish != sim.Time(20*sim.Millisecond) {
		t.Fatalf("finish = %v, want 20ms (lock RT 10 + CPU 10)", rec.Finish)
	}
	// register + 2 lock hops + release.
	if rec.Messages != 4 {
		t.Fatalf("messages = %d, want 4", rec.Messages)
	}
	// Committed write visible at the primary store.
	if v := c.Store(1).Read(10); v.Seq != 1 {
		t.Fatalf("primary store version %+v", v)
	}
}

func TestGlobalGCMSiteLocksFree(t *testing.T) {
	c, err := NewCluster(cfg(GlobalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Home = GCM site 0, object 0 is home-primary: no messages at all.
	tx := mkDistTxn(1, 0, 0, sim.Time(sim.Second), []workload.Op{{Obj: 0, Mode: core.Write}})
	c.Load([]*workload.Txn{tx})
	c.Run()
	rec := c.Monitor.Records()[0]
	if rec.Finish != sim.Time(10*sim.Millisecond) {
		t.Fatalf("finish = %v, want 10ms", rec.Finish)
	}
	if rec.Messages != 0 {
		t.Fatalf("messages = %d, want 0", rec.Messages)
	}
}

func TestGlobalRemoteDataAccess(t *testing.T) {
	c, err := NewCluster(cfg(GlobalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Read-only transaction at site 1 reading object 20 (primary at
	// site 2): lock RT (10) + travel to owner (5) + CPU (10) + back (5).
	tx := mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{{Obj: 20, Mode: core.Read}})
	c.Load([]*workload.Txn{tx})
	c.Run()
	rec := c.Monitor.Records()[0]
	if rec.Finish != sim.Time(30*sim.Millisecond) {
		t.Fatalf("finish = %v, want 30ms", rec.Finish)
	}
	// register + 2 lock + 2 data + release.
	if rec.Messages != 6 {
		t.Fatalf("messages = %d, want 6", rec.Messages)
	}
}

func TestGlobalTwoPhaseCommitOnRemoteWrite(t *testing.T) {
	c, err := NewCluster(cfg(GlobalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Write at a remote primary triggers 2PC: one prepare round trip.
	tx := mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{{Obj: 20, Mode: core.Write}})
	c.Load([]*workload.Txn{tx})
	c.Run()
	rec := c.Monitor.Records()[0]
	// 30ms as above + 10ms prepare round.
	if rec.Finish != sim.Time(40*sim.Millisecond) {
		t.Fatalf("finish = %v, want 40ms (with 2PC prepare round)", rec.Finish)
	}
	// register + 2 lock + 2 data + prepare/vote (2) + decision (1) + release.
	if rec.Messages != 9 {
		t.Fatalf("messages = %d, want 9", rec.Messages)
	}
	if v := c.Store(2).Read(20); v.Seq != 1 {
		t.Fatalf("remote primary version %+v", v)
	}
}

func TestGlobalTwoPCDecisionsDelivered(t *testing.T) {
	c, err := NewCluster(cfg(GlobalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	tx := mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{
		{Obj: 20, Mode: core.Write}, // site 2
		{Obj: 0, Mode: core.Write},  // site 0
	})
	c.Load([]*workload.Txn{tx})
	sum := c.Run()
	if sum.Committed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	// Two remote write participants, one decision each.
	if c.TwoPCDecisions() != 2 {
		t.Fatalf("decisions = %d, want 2", c.TwoPCDecisions())
	}
}

func TestGlobalTwoPCAbortMidProtocol(t *testing.T) {
	c, err := NewCluster(cfg(GlobalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Ops finish at 30ms; the 2PC vote round needs 10ms more, but the
	// deadline lands at 35ms — the coordinator aborts mid-protocol and
	// abort decisions still reach the participant.
	tx := mkDistTxn(1, 1, 0, sim.Time(35*sim.Millisecond), []workload.Op{{Obj: 20, Mode: core.Write}})
	c.Load([]*workload.Txn{tx})
	sum := c.Run()
	if sum.Missed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	if c.TwoPCDecisions() != 1 {
		t.Fatalf("decisions = %d, want 1 (abort decision)", c.TwoPCDecisions())
	}
	// The aborted write never reaches the primary store.
	if v := c.Store(2).Read(20); v.Seq != 0 {
		t.Fatalf("aborted write installed: %+v", v)
	}
}

func TestGlobalStarTopologyGCMPlacement(t *testing.T) {
	// With a star interconnect, a transaction at a leaf pays leaf→hub
	// (GCM at the hub) one link; leaf→leaf data access pays two.
	topo, err := netsimStar(3, 0, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	conf := cfg(GlobalCeiling, 0)
	conf.Topology = topo
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	// Home site 1 (leaf), object 0 is at hub site 0: lock RT to hub
	// (10ms) + data access at hub (5+10+5) = 30ms total.
	tx := mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{{Obj: 0, Mode: core.Read}})
	c.Load([]*workload.Txn{tx})
	c.Run()
	rec := c.Monitor.Records()[0]
	if rec.Finish != sim.Time(30*sim.Millisecond) {
		t.Fatalf("finish = %v, want 30ms under star topology", rec.Finish)
	}
}

func TestClusterTopologySiteMismatch(t *testing.T) {
	topo, err := netsimStar(4, 0, sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	conf := cfg(GlobalCeiling, 0)
	conf.Topology = topo // 4 sites vs config's 3
	if _, err := NewCluster(conf); err == nil {
		t.Fatal("mismatched topology accepted")
	}
}

func TestGlobalCeilingBlocksAcrossSites(t *testing.T) {
	c, err := NewCluster(cfg(GlobalCeiling, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Two transactions at different sites contending for one object:
	// the global manager serializes them even though they never meet.
	a := mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{{Obj: 5, Mode: core.Write}})
	b := mkDistTxn(2, 2, sim.Time(sim.Millisecond), sim.Time(sim.Second), []workload.Op{{Obj: 5, Mode: core.Write}})
	c.Load([]*workload.Txn{a, b})
	sum := c.Run()
	if sum.Committed != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	recs := c.Monitor.Records()
	if recs[1].Blocked == 0 {
		t.Fatal("second transaction was not blocked by the global manager")
	}
}

func TestGlobalDeadlineAbort(t *testing.T) {
	c, err := NewCluster(cfg(GlobalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Deadline expires mid-flight (during the lock round trip).
	tx := mkDistTxn(1, 1, 0, sim.Time(7*sim.Millisecond), []workload.Op{{Obj: 10, Mode: core.Write}})
	after := mkDistTxn(2, 1, sim.Time(50*sim.Millisecond), sim.Time(sim.Second), []workload.Op{{Obj: 10, Mode: core.Write}})
	c.Load([]*workload.Txn{tx, after})
	sum := c.Run()
	if sum.Missed != 1 || sum.Committed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	rec := c.Monitor.Records()[0]
	if rec.Finish != sim.Time(7*sim.Millisecond) {
		t.Fatalf("aborted at %v, want the 7ms deadline", rec.Finish)
	}
}

func TestGlobalHistorySerializable(t *testing.T) {
	conf := cfg(GlobalCeiling, 2*sim.Millisecond)
	conf.RecordHistory = true
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	var txs []*workload.Txn
	for i := int64(1); i <= 15; i++ {
		home := db.SiteID(i % 3)
		obj := core.ObjectID(i % 6)
		obj2 := core.ObjectID((i + 3) % 6)
		txs = append(txs, mkDistTxn(i, home, sim.Time(i)*sim.Time(8*sim.Millisecond), sim.Time(10*sim.Second),
			[]workload.Op{{Obj: obj, Mode: core.Write}, {Obj: obj2, Mode: core.Write}}))
	}
	c.Load(txs)
	sum := c.Run()
	if sum.Committed != 15 {
		t.Fatalf("committed %d/15: %+v", sum.Committed, sum)
	}
	if !c.History.ConflictSerializable() {
		t.Fatal("global approach produced a non-serializable history")
	}
}

func TestLocalAllAccessesLocal(t *testing.T) {
	c, err := NewCluster(cfg(LocalCeiling, 20*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Update at site 1 writing two home-primary objects: pure local
	// execution regardless of the large communication delay.
	tx := mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{
		{Obj: 10, Mode: core.Write}, {Obj: 11, Mode: core.Write},
	})
	c.Load([]*workload.Txn{tx})
	sum := c.Run()
	if sum.Committed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	rec := c.Monitor.Records()[0]
	if rec.Finish != sim.Time(20*sim.Millisecond) {
		t.Fatalf("finish = %v, want 20ms (2 × local CPU)", rec.Finish)
	}
	// Propagation to the other two sites.
	if rec.Messages != 2 {
		t.Fatalf("messages = %d, want 2 (one install per other site)", rec.Messages)
	}
}

func TestLocalPropagationInstallsReplicas(t *testing.T) {
	c, err := NewCluster(cfg(LocalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	tx := mkDistTxn(1, 0, 0, sim.Time(sim.Second), []workload.Op{{Obj: 0, Mode: core.Write}})
	c.Load([]*workload.Txn{tx})
	c.Run()
	for s := db.SiteID(0); s < 3; s++ {
		if v := c.Store(s).Read(0); v.Seq != 1 || v.Value != 1 {
			t.Fatalf("site %d replica = %+v, want installed version 1", s, v)
		}
	}
	if got := c.Replication().Installs; got != 2 {
		t.Fatalf("installs = %d, want 2", got)
	}
	if got := c.Replication().InstallDrops; got != 0 {
		t.Fatalf("install drops = %d", got)
	}
}

func TestLocalStaleReadObserved(t *testing.T) {
	c, err := NewCluster(cfg(LocalCeiling, 20*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Writer at site 0 commits object 0 at 10ms; reader at site 1 reads
	// it at 15ms — before the install lands (30ms+). The read is stale.
	w := mkDistTxn(1, 0, 0, sim.Time(sim.Second), []workload.Op{{Obj: 0, Mode: core.Write}})
	r := mkDistTxn(2, 1, sim.Time(15*sim.Millisecond), sim.Time(sim.Second), []workload.Op{{Obj: 0, Mode: core.Read}})
	c.Load([]*workload.Txn{w, r})
	sum := c.Run()
	if sum.Committed != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	repl := c.Replication()
	if repl.ReadSamples != 1 || repl.StaleReads != 1 {
		t.Fatalf("replication stats = %+v, want one stale read", repl)
	}
	if repl.TotalLag <= 0 {
		t.Fatal("no staleness lag recorded")
	}
}

func TestLocalInstallerDropsAfterRetries(t *testing.T) {
	conf := cfg(LocalCeiling, 5*sim.Millisecond)
	conf.InstallTimeout = 8 * sim.Millisecond // covers the 5ms apply with margin
	conf.InstallRetries = 2
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	// A read-only transaction at site 1 read-locks object 0 (a replica
	// of site 0's primary) for a very long time; the installer for the
	// concurrent write cannot get its write lock and eventually drops.
	var ops []workload.Op
	ops = append(ops, workload.Op{Obj: 0, Mode: core.Read})
	for i := 10; i < 18; i++ {
		ops = append(ops, workload.Op{Obj: core.ObjectID(i), Mode: core.Read})
	}
	reader := mkDistTxn(1, 1, 0, sim.Time(10*sim.Second), ops)
	writer := mkDistTxn(2, 0, sim.Time(2*sim.Millisecond), sim.Time(sim.Second), []workload.Op{{Obj: 0, Mode: core.Write}})
	c.Load([]*workload.Txn{reader, writer})
	sum := c.Run()
	if sum.Committed != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	repl := c.Replication()
	// Site 2's install succeeds; site 1's is blocked by the reader
	// until it times out twice and drops.
	if repl.InstallDrops != 1 || repl.Installs != 1 {
		t.Fatalf("replication stats = %+v, want 1 drop and 1 install", repl)
	}
	if v := c.Store(1).Read(0); v.Seq != 0 {
		t.Fatalf("site 1 replica unexpectedly updated: %+v", v)
	}
}

// inconsistencyScenario builds the temporal-inconsistency race on an
// asymmetric interconnect (site 0 is 5ms from the reader's site 2, site
// 1 is 40ms away): W1 writes object 0 at site 0 (commit 10ms; replica
// installed at site 2 by ~20ms); W2 writes object 10 at site 1 (commit
// 25ms; replica reaches site 2 only at ~65ms). The reader at site 2
// sees object 0 NEW (written 10ms) at 30ms and object 10 still OLD at
// 40ms — but object 10's update (25ms) happened AFTER object 0's, so no
// single instant admits both observations: the view is temporally
// inconsistent.
func inconsistencyScenario(t *testing.T) (Config, []*workload.Txn) {
	t.Helper()
	ms := sim.Millisecond
	topo, err := netsim.Custom([][]sim.Duration{
		{0, 20 * ms, 5 * ms},
		{20 * ms, 0, 40 * ms},
		{5 * ms, 40 * ms, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	conf := cfg(LocalCeiling, 0)
	conf.Topology = topo
	// The EARLY write (10ms, object 10 at far site 1) propagates
	// slowly (installed at the reader's site ~55ms); the LATE write
	// (25ms, object 0 at near site 0) arrives fast (~35ms). The reader
	// then observes object 0 NEW but object 10 OLD — and object 10's
	// zero version stopped being current at 10ms, before object 0's
	// version existed (25ms): no consistent instant.
	w1 := mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{{Obj: 10, Mode: core.Write}})
	w2 := mkDistTxn(2, 0, sim.Time(15*sim.Millisecond), sim.Time(sim.Second), []workload.Op{{Obj: 0, Mode: core.Write}})
	reader := &workload.Txn{ID: 3, Kind: workload.ReadOnly, Home: 2,
		Arrival: sim.Time(36 * sim.Millisecond), Deadline: sim.Time(sim.Second),
		Ops: []workload.Op{
			{Obj: 0, Mode: core.Read},  // at 36ms: new version (installed ~35ms)
			{Obj: 10, Mode: core.Read}, // at 46ms: old version (installed ~55ms)
		}}
	return conf, []*workload.Txn{w1, w2, reader}
}

func TestLocalInconsistentViewDetected(t *testing.T) {
	conf, load := inconsistencyScenario(t)
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	c.Load(load)
	sum := c.Run()
	if sum.Committed != 3 {
		t.Fatalf("summary: %+v", sum)
	}
	repl := c.Replication()
	if repl.InconsistentViews != 1 || repl.ConsistentViews != 0 {
		t.Fatalf("replication = %+v, want exactly one inconsistent view", repl)
	}
}

func TestLocalMultiversionSnapshotConsistent(t *testing.T) {
	// The same race under multiversion snapshot reads: the reader pins
	// its view to arrival − lag and sees a consistent (if old)
	// snapshot.
	conf, load := inconsistencyScenario(t)
	conf.Multiversion = true
	conf.SnapshotLag = 100 * sim.Millisecond
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	c.Load(load)
	sum := c.Run()
	if sum.Committed != 3 {
		t.Fatalf("summary: %+v", sum)
	}
	repl := c.Replication()
	if repl.InconsistentViews != 0 || repl.ConsistentViews != 1 {
		t.Fatalf("replication = %+v, want one consistent view", repl)
	}
	if repl.SnapshotMisses != 0 {
		t.Fatalf("snapshot misses = %d", repl.SnapshotMisses)
	}
}

func TestSiteSpeedValidation(t *testing.T) {
	conf := cfg(LocalCeiling, 0)
	conf.SiteSpeed = []float64{1, 2} // wrong length
	if _, err := NewCluster(conf); err == nil {
		t.Fatal("wrong-length site speeds accepted")
	}
	conf.SiteSpeed = []float64{1, 0, 1}
	if _, err := NewCluster(conf); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func TestSiteSpeedScalesService(t *testing.T) {
	// A transaction at a double-speed site finishes its CPU work in
	// half the time.
	conf := cfg(LocalCeiling, 0)
	conf.SiteSpeed = []float64{1, 2, 1}
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	slow := mkDistTxn(1, 0, 0, sim.Time(sim.Second), []workload.Op{{Obj: 0, Mode: core.Write}})
	fast := mkDistTxn(2, 1, 0, sim.Time(sim.Second), []workload.Op{{Obj: 10, Mode: core.Write}})
	c.Load([]*workload.Txn{slow, fast})
	c.Run()
	recs := c.Monitor.Records()
	if recs[0].Finish != sim.Time(10*sim.Millisecond) {
		t.Fatalf("speed-1 site finished at %v, want 10ms", recs[0].Finish)
	}
	if recs[1].Finish != sim.Time(5*sim.Millisecond) {
		t.Fatalf("speed-2 site finished at %v, want 5ms", recs[1].Finish)
	}
}

func TestHeterogeneousSpeedsShiftMisses(t *testing.T) {
	// Slowing one site concentrates deadline misses there.
	base := cfg(LocalCeiling, 0)
	base.SiteSpeed = []float64{0.25, 1, 1} // site 0 is 4× slower
	c, err := NewCluster(base)
	if err != nil {
		t.Fatal(err)
	}
	var txs []*workload.Txn
	id := int64(0)
	for i := 0; i < 60; i++ {
		id++
		home := db.SiteID(i % 3)
		baseObj := core.ObjectID(int(home) * 10)
		arr := sim.Time(i) * sim.Time(10*sim.Millisecond)
		txs = append(txs, mkDistTxn(id, home, arr, arr.Add(150*sim.Millisecond), []workload.Op{
			{Obj: baseObj + core.ObjectID(i%5), Mode: core.Write},
			{Obj: baseObj + core.ObjectID((i+2)%5), Mode: core.Write},
		}))
	}
	c.Load(txs)
	c.Run()
	missBySite := map[db.SiteID]int{}
	for _, rec := range c.Monitor.Records() {
		if rec.Outcome != stats.Committed {
			missBySite[rec.Site]++
		}
	}
	if missBySite[0] <= missBySite[1] || missBySite[0] <= missBySite[2] {
		t.Fatalf("slow site did not dominate misses: %v", missBySite)
	}
}

func TestLocalSurvivesRemoteSiteFailure(t *testing.T) {
	// A down remote site costs the local approach only dropped replica
	// updates — local transactions keep committing.
	c, err := NewCluster(cfg(LocalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c.FailSite(2, 0, 0) // down for the whole run
	var txs []*workload.Txn
	for i := int64(1); i <= 20; i++ {
		txs = append(txs, mkDistTxn(i, 0, sim.Time(i)*sim.Time(20*sim.Millisecond), sim.Time(10*sim.Second),
			[]workload.Op{{Obj: core.ObjectID(i % 5), Mode: core.Write}}))
	}
	c.Load(txs)
	sum := c.Run()
	if sum.Committed != 20 {
		t.Fatalf("summary: %+v", sum)
	}
	if c.Net.DroppedDown == 0 {
		t.Fatal("no replica updates were dropped toward the down site")
	}
	// Site 1 still received its installs; site 2 received none.
	if v := c.Store(1).Read(0); v.Seq == 0 {
		t.Fatal("live replica not updated")
	}
	if v := c.Store(2).Read(0); v.Seq != 0 {
		t.Fatal("down site received updates")
	}
}

func TestGlobalStallsWhenGCMDown(t *testing.T) {
	// With the global ceiling manager unreachable, every remote-homed
	// transaction times out on its lock request and misses.
	c, err := NewCluster(cfg(GlobalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c.FailSite(0, 0, 0) // the GCM site
	var txs []*workload.Txn
	for i := int64(1); i <= 10; i++ {
		txs = append(txs, mkDistTxn(i, 1, sim.Time(i)*sim.Time(10*sim.Millisecond), sim.Time(i)*sim.Time(10*sim.Millisecond)+sim.Time(200*sim.Millisecond),
			[]workload.Op{{Obj: 10, Mode: core.Write}}))
	}
	c.Load(txs)
	sum := c.Run()
	if sum.Committed != 0 || sum.Missed != 10 {
		t.Fatalf("summary: %+v — GCM down must stall remote transactions", sum)
	}
}

func TestGlobalRecoversAfterGCMOutage(t *testing.T) {
	c, err := NewCluster(cfg(GlobalCeiling, 5*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Outage 0–100ms; a transaction arriving at 150ms succeeds.
	c.FailSite(0, 0, sim.Time(100*sim.Millisecond))
	early := mkDistTxn(1, 1, 0, sim.Time(80*sim.Millisecond), []workload.Op{{Obj: 10, Mode: core.Write}})
	late := mkDistTxn(2, 1, sim.Time(150*sim.Millisecond), sim.Time(sim.Second), []workload.Op{{Obj: 10, Mode: core.Write}})
	c.Load([]*workload.Txn{early, late})
	sum := c.Run()
	if sum.Committed != 1 || sum.Missed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	recs := c.Monitor.Records()
	if recs[0].Outcome == stats.Committed {
		t.Fatal("transaction during outage committed")
	}
	if recs[1].Outcome != stats.Committed {
		t.Fatal("post-recovery transaction missed")
	}
}

func TestLocalBeatsGlobalUnderContention(t *testing.T) {
	// The headline §4 comparison in miniature: same workload, both
	// approaches; the local approach must miss no more deadlines and
	// finish no later on average.
	mkLoad := func() []*workload.Txn {
		var txs []*workload.Txn
		id := int64(0)
		for i := 0; i < 30; i++ {
			id++
			home := db.SiteID(i % 3)
			base := core.ObjectID(int(home) * 10)
			arr := sim.Time(i) * sim.Time(15*sim.Millisecond)
			txs = append(txs, mkDistTxn(id, home, arr, arr.Add(250*sim.Millisecond), []workload.Op{
				{Obj: base + core.ObjectID(i%5), Mode: core.Write},
				{Obj: base + core.ObjectID((i+1)%5), Mode: core.Write},
			}))
		}
		return txs
	}
	run := func(a Approach) float64 {
		c, err := NewCluster(cfg(a, 10*sim.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		c.Load(mkLoad())
		return c.Run().MissedPct
	}
	globalMiss := run(GlobalCeiling)
	localMiss := run(LocalCeiling)
	if localMiss > globalMiss {
		t.Fatalf("local missed %.1f%% > global %.1f%%", localMiss, globalMiss)
	}
}
