package dist

// Crash–recovery and degradation behavior under the deterministic
// fault injector: attach-time validation, fault-free equivalence of the
// empty plan, crash semantics (resident kills, crashed-home arrivals),
// GCM failover, and the 2PC safety scenarios the presumed-abort
// hardening exists for. The 2PC scenarios are self-calibrating: a
// fault-free baseline run supplies the protocol instants, and each
// crash plan is built around them.

import (
	"testing"

	"rtlock/internal/audit"
	"rtlock/internal/core"
	"rtlock/internal/faults"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
	"rtlock/internal/workload"
)

func TestAttachFaultsValidates(t *testing.T) {
	c, err := NewCluster(cfg(LocalCeiling, sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	bad := &faults.Plan{Crashes: []faults.Crash{{Site: 9, At: 0}}}
	if err := c.AttachFaults(bad, 1); err == nil {
		t.Fatal("out-of-range crash site accepted")
	}
}

// faultTestLoad is a small cross-site mix: local and remote writes (2PC
// participants), plus a read-only transaction.
func faultTestLoad() []*workload.Txn {
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }
	return []*workload.Txn{
		mkDistTxn(1, 0, 0, ms(900), []workload.Op{{Obj: 1, Mode: core.Write}, {Obj: 11, Mode: core.Write}}),
		mkDistTxn(2, 1, ms(3), ms(900), []workload.Op{{Obj: 12, Mode: core.Write}}),
		mkDistTxn(3, 2, ms(6), ms(900), []workload.Op{{Obj: 21, Mode: core.Read}, {Obj: 2, Mode: core.Read}}),
		mkDistTxn(4, 2, ms(9), ms(900), []workload.Op{{Obj: 22, Mode: core.Write}, {Obj: 3, Mode: core.Write}}),
	}
}

func TestAttachEmptyPlanJournalIdentical(t *testing.T) {
	for _, a := range []Approach{GlobalCeiling, LocalCeiling} {
		run := func(attach bool) *journal.Journal {
			conf := cfg(a, 5*sim.Millisecond)
			conf.Journal = journal.New(1, "fault-free-eq")
			c, err := NewCluster(conf)
			if err != nil {
				t.Fatal(err)
			}
			if attach {
				if err := c.AttachFaults(&faults.Plan{}, 7); err != nil {
					t.Fatal(err)
				}
			}
			c.Load(faultTestLoad())
			c.Run()
			return conf.Journal
		}
		plain, attached := run(false), run(true)
		if plain.Hash() != attached.Hash() {
			t.Errorf("%s: empty fault plan perturbed the journal:\n%s",
				a, journal.Diff(plain, attached))
		}
	}
}

func TestCrashKillsResidentAndArrivalsMiss(t *testing.T) {
	conf := cfg(LocalCeiling, 5*sim.Millisecond)
	conf.Journal = journal.New(1, "crash-kill")
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Crashes: []faults.Crash{{
		Site: 0, At: 5 * int64(sim.Millisecond), RecoverAt: 100 * int64(sim.Millisecond),
	}}}
	if err := c.AttachFaults(plan, 1); err != nil {
		t.Fatal(err)
	}
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }
	c.Load([]*workload.Txn{
		// Resident at site 0 when it crashes at 5ms (10ms of CPU).
		mkDistTxn(1, 0, 0, ms(500), []workload.Op{{Obj: 1, Mode: core.Write}}),
		// Arrives at the crashed home: an immediate miss.
		mkDistTxn(2, 0, ms(10), ms(500), []workload.Op{{Obj: 2, Mode: core.Write}}),
		// Arrives after recovery: unaffected.
		mkDistTxn(3, 0, ms(200), ms(500), []workload.Op{{Obj: 3, Mode: core.Write}}),
	})
	sum := c.Run()
	if sum.Committed != 1 || sum.Missed != 2 {
		t.Fatalf("summary: %+v, want 1 committed (post-recovery) and 2 missed", sum)
	}
	var crash, recover bool
	for _, r := range conf.Journal.Records() {
		switch r.Kind {
		case journal.KSiteCrash:
			crash = true
		case journal.KSiteRecover:
			recover = true
		}
	}
	if !crash || !recover {
		t.Fatalf("crash=%t recover=%t, want both journaled", crash, recover)
	}
	if vs := audit.Run(conf.Journal, audit.ForFaults("local")...); len(vs) > 0 {
		t.Fatalf("auditors: %v", vs)
	}
}

func TestGCMFailoverDuringCrash(t *testing.T) {
	conf := cfg(GlobalCeiling, 5*sim.Millisecond)
	conf.GCMSite = 0
	conf.Journal = journal.New(1, "gcm-failover")
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Crashes: []faults.Crash{{
		Site: 0, At: 2 * int64(sim.Millisecond), RecoverAt: 100 * int64(sim.Millisecond),
	}}}
	if err := c.AttachFaults(plan, 1); err != nil {
		t.Fatal(err)
	}
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }
	c.Load([]*workload.Txn{
		// Arrives during the GCM outage; home-local writes, so the
		// failover manager alone can serve it.
		mkDistTxn(1, 1, ms(5), ms(500), []workload.Op{{Obj: 12, Mode: core.Write}, {Obj: 13, Mode: core.Write}}),
		// Arrives after recovery: back on the global manager.
		mkDistTxn(2, 1, ms(200), ms(500), []workload.Op{{Obj: 14, Mode: core.Write}}),
	})
	sum := c.Run()
	if sum.Committed != 2 {
		t.Fatalf("summary: %+v, want both committed", sum)
	}
	var failover1, failover2 bool
	for _, r := range conf.Journal.Records() {
		if r.Kind == journal.KFailover {
			switch r.Tx {
			case 1:
				failover1 = true
			case 2:
				failover2 = true
			}
		}
	}
	if !failover1 {
		t.Error("tx 1 ran during the outage without a KFailover record")
	}
	if failover2 {
		t.Error("tx 2 arrived after recovery but still used the failover manager")
	}
	if v := c.Store(1).Read(12); v.Seq == 0 {
		t.Error("failover-managed write missing from the primary store")
	}
	if vs := audit.Run(conf.Journal, audit.ForFaults("global")...); len(vs) > 0 {
		t.Fatalf("auditors: %v", vs)
	}
}

// --- self-calibrating 2PC crash scenarios ---

// twopcConf is the shared configuration: home 1 is also the GCM site
// (locking is free there), and the single write on object 20 makes
// site 2 the lone 2PC participant.
func twopcConf() Config {
	conf := cfg(GlobalCeiling, 5*sim.Millisecond)
	conf.GCMSite = 1
	return conf
}

func twopcTxn() *workload.Txn {
	return mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{{Obj: 20, Mode: core.Write}})
}

// twopcBaseline runs fault-free and returns the journal tick of the
// first prepare, the participant's vote, and the participant's
// decision. WAL bookkeeping costs no simulated time, so a faulted run
// replays these instants exactly up to the first injected fault.
func twopcBaseline(t *testing.T) (prepAt, voteAt, decAt int64) {
	t.Helper()
	conf := twopcConf()
	conf.Journal = journal.New(1, "twopc-baseline")
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	c.Load([]*workload.Txn{twopcTxn()})
	if sum := c.Run(); sum.Committed != 1 {
		t.Fatalf("baseline summary: %+v", sum)
	}
	for _, r := range conf.Journal.Records() {
		switch {
		case r.Kind == journal.KTwoPCPrepare && prepAt == 0:
			prepAt = r.At
		case r.Kind == journal.KTwoPCVote && r.Site == 2 && voteAt == 0:
			voteAt = r.At
		case r.Kind == journal.KTwoPCDecision && r.Site == 2 && r.Note == "" && decAt == 0:
			decAt = r.At
		}
	}
	if prepAt == 0 || voteAt == 0 || decAt == 0 {
		t.Fatalf("baseline journal missing 2PC instants: prepare=%d vote=%d decision=%d", prepAt, voteAt, decAt)
	}
	return prepAt, voteAt, decAt
}

// twopcScenario runs the calibrated transaction under a plan and
// checks the safety invariants every scenario must satisfy: the fault
// auditors hold, and the participant's store reflects object 20's
// write exactly when some site recorded a commit decision.
func twopcScenario(t *testing.T, name string, plan *faults.Plan) *journal.Journal {
	t.Helper()
	conf := twopcConf()
	conf.Journal = journal.New(1, "twopc-"+name)
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachFaults(plan, 1); err != nil {
		t.Fatal(err)
	}
	c.Load([]*workload.Txn{twopcTxn()})
	c.Run()
	j := conf.Journal
	if vs := audit.Run(j, audit.ForFaults("global")...); len(vs) > 0 {
		t.Fatalf("%s: auditors: %v", name, vs)
	}
	committed := false
	for _, r := range j.Records() {
		if r.Kind == journal.KTwoPCDecision && r.Site == 2 && r.A == 1 {
			committed = true
		}
	}
	if applied := c.Store(2).Read(20).Seq != 0; applied != committed {
		t.Fatalf("%s: participant store applied=%t but commit decision=%t", name, applied, committed)
	}
	return j
}

func countKind(j *journal.Journal, k journal.Kind) int {
	n := 0
	for _, r := range j.Records() {
		if r.Kind == k {
			n++
		}
	}
	return n
}

func TestTwoPCParticipantCrashBeforeVote(t *testing.T) {
	_, voteAt, _ := twopcBaseline(t)
	// Down one tick before the prepare arrives; back long after every
	// retry has burned out, so the coordinator presumes abort.
	plan := &faults.Plan{Crashes: []faults.Crash{{
		Site: 2, At: voteAt - 1, RecoverAt: voteAt + 600*int64(sim.Millisecond),
	}}}
	j := twopcScenario(t, "part-pre-vote", plan)
	if n := countKind(j, journal.KSiteCrash); n != 1 {
		t.Fatalf("KSiteCrash records = %d", n)
	}
	// The participant never voted, so recovery replays an empty log.
	for _, r := range j.Records() {
		if r.Kind == journal.KWALRedo && r.A != 0 {
			t.Fatalf("recovery restored %d pending votes, want 0: %+v", r.A, r)
		}
		if r.Kind == journal.KTwoPCDecision && r.A == 1 {
			t.Fatalf("commit decided against a crashed, unvoted participant: %+v", r)
		}
	}
	if countKind(j, journal.KRetry) == 0 {
		t.Error("coordinator never retried the unanswered prepare")
	}
}

func TestTwoPCParticipantCrashAfterVote(t *testing.T) {
	_, voteAt, _ := twopcBaseline(t)
	// Crash just after the forced vote leaves; the decision in flight is
	// lost, so recovery must redo the WAL and resolve with the
	// coordinator — which logged commit.
	plan := &faults.Plan{Crashes: []faults.Crash{{
		Site: 2, At: voteAt + 1, RecoverAt: voteAt + 100*int64(sim.Millisecond),
	}}}
	j := twopcScenario(t, "part-post-vote", plan)
	redo := false
	for _, r := range j.Records() {
		if r.Kind == journal.KWALRedo && r.Site == 2 {
			redo = true
			if r.A != 1 {
				t.Fatalf("WAL redo restored %d pending votes, want the forced vote", r.A)
			}
		}
	}
	if !redo {
		t.Fatal("no KWALRedo after participant recovery")
	}
	resolved := false
	for _, r := range j.Records() {
		if r.Kind == journal.KTwoPCDecision && r.Site == 2 && r.Note == "resolved" {
			resolved = true
			if r.A != 1 {
				t.Fatalf("resolution returned abort for a logged commit: %+v", r)
			}
		}
	}
	if !resolved {
		t.Fatal("prepared participant never resolved its in-doubt transaction")
	}
}

func TestTwoPCCoordinatorCrashBeforeDecision(t *testing.T) {
	_, voteAt, _ := twopcBaseline(t)
	// The coordinator dies while the vote is in flight: it can never
	// decide, its log stays empty, and the prepared participant must
	// end at abort by presumption — never a unilateral one.
	plan := &faults.Plan{Crashes: []faults.Crash{{
		Site: 1, At: voteAt + 2*int64(sim.Millisecond), RecoverAt: voteAt + 200*int64(sim.Millisecond),
	}}}
	j := twopcScenario(t, "coord-pre-decision", plan)
	for _, r := range j.Records() {
		if r.Kind == journal.KTwoPCDecision && r.A == 1 {
			t.Fatalf("commit decision from a coordinator that crashed undecided: %+v", r)
		}
	}
	// The participant held its prepared state until resolution: the
	// abort must come from the resolver, not a local timeout guess.
	resolvedAbort := false
	for _, r := range j.Records() {
		if r.Kind == journal.KTwoPCDecision && r.Site == 2 && r.Note == "resolved" && r.A == 0 {
			resolvedAbort = true
		}
	}
	if !resolvedAbort {
		t.Fatal("participant never resolved to the presumed abort")
	}
}

func TestTwoPCCoordinatorCrashAfterDecision(t *testing.T) {
	_, _, decAt := twopcBaseline(t)
	// The commit decision is logged and shipped before the coordinator
	// dies; the participant must still install it.
	plan := &faults.Plan{Crashes: []faults.Crash{{
		Site: 1, At: decAt - 4*int64(sim.Millisecond), RecoverAt: decAt + 200*int64(sim.Millisecond),
	}}}
	j := twopcScenario(t, "coord-post-decision", plan)
	committed := false
	for _, r := range j.Records() {
		if r.Kind == journal.KTwoPCDecision && r.Site == 2 && r.A == 1 {
			committed = true
		}
	}
	if !committed {
		t.Fatal("decided commit was lost with the coordinator")
	}
}

func TestTwoPCPartitionDuringPrepare(t *testing.T) {
	prepAt, _, _ := twopcBaseline(t)
	// Isolate the participant one tick after the prepare leaves (any
	// earlier also cuts the operation hop still returning from site 2,
	// which lands on the same tick the prepare departs): the in-flight
	// prepare is lost to the arrival re-check, and the partition heals
	// before the coordinator's first retry, which must then succeed.
	plan := &faults.Plan{Partitions: []faults.Partition{{
		GroupA: []int{2}, At: prepAt + 1, HealAt: prepAt + 20*int64(sim.Millisecond),
	}}}
	j := twopcScenario(t, "partition-prepare", plan)
	cutDrop, retried, committed := false, false, false
	for _, r := range j.Records() {
		switch r.Kind {
		case journal.KMsgDrop:
			if r.B == 2 { // netsim.DropCut
				cutDrop = true
			}
		case journal.KRetry:
			if r.Note == "prepare" {
				retried = true
			}
		case journal.KTwoPCDecision:
			if r.Site == 2 && r.A == 1 {
				committed = true
			}
		}
	}
	if !cutDrop {
		t.Error("no message was dropped by the partition")
	}
	if !retried {
		t.Error("coordinator never re-sent the lost prepare")
	}
	if !committed {
		t.Error("transaction failed to commit after the partition healed")
	}
	if countKind(j, journal.KPartition) != 1 || countKind(j, journal.KHeal) != 1 {
		t.Error("partition open/heal not journaled")
	}
}
