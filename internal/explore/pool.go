package explore

import (
	"fmt"
	"runtime"
	"sync"
)

// runBatch executes n jobs on up to `workers` goroutines and returns
// the results in input order. The job set and its order are decided by
// the caller before runBatch starts, and results are index-addressed,
// so worker count (and OS scheduling) affect wall-clock time only —
// never which jobs run or how their results are observed. A panicking
// job is captured as that slot's error instead of tearing down the
// process.
//
// This file is the package's only goroutine spawn site and is listed in
// rtlint's raw-go allowlist; everything else in the package runs on the
// caller's goroutine.
func runBatch[T any](n, workers int, job func(i int) (T, error)) []batchResult[T] {
	out := make([]batchResult[T], n)
	if n == 0 {
		return out
	}
	if workers > n {
		workers = n
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = guardedJob(i, job)
			}
		}()
	}
	wg.Wait()
	return out
}

// batchResult is one job's slot: the value or the error (including a
// recovered panic).
type batchResult[T any] struct {
	val T
	err error
}

func guardedJob[T any](i int, job func(i int) (T, error)) (res batchResult[T]) {
	defer func() {
		if r := recover(); r != nil {
			res.err = fmt.Errorf("explore: schedule job %d panicked: %v", i, r)
		}
	}()
	res.val, res.err = job(i)
	return res
}
