package explore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteVerdict renders a report as JSON Lines: a header line describing
// the exploration, one line per counterexample, and a summary line. The
// encoding is byte-stable — fixed field order, no timestamps, no
// environment — so identical explorations (any worker count, any
// GOMAXPROCS) write identical files; that byte identity is the
// determinism proof the tests pin.
func WriteVerdict(w io.Writer, r *Report) error {
	bw := bufio.NewWriter(w)
	head := verdictHeader{
		Kind:      "explore",
		Target:    r.Target,
		Strategy:  string(r.Strategy),
		Seed:      r.Seed,
		Schedules: r.Schedules,
		MaxDepth:  r.MaxDepth,
		Branch:    r.Branch,
	}
	if err := writeLine(bw, head); err != nil {
		return err
	}
	for i, ce := range r.Counterexamples {
		if err := writeLine(bw, verdictCE{Kind: "counterexample", Index: i, Counterexample: ce}); err != nil {
			return err
		}
	}
	sum := verdictSummary{
		Kind:            "summary",
		Explored:        r.Explored,
		Distinct:        r.Distinct,
		Pruned:          r.Pruned,
		Frontier:        r.Frontier,
		Deepest:         r.Deepest,
		Counterexamples: len(r.Counterexamples),
	}
	if err := writeLine(bw, sum); err != nil {
		return err
	}
	return bw.Flush()
}

func writeLine(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

type verdictHeader struct {
	Kind      string `json:"kind"`
	Target    string `json:"target"`
	Strategy  string `json:"strategy"`
	Seed      int64  `json:"seed"`
	Schedules int    `json:"schedules"`
	MaxDepth  int    `json:"max_depth"`
	Branch    int    `json:"branch"`
}

type verdictCE struct {
	Kind  string `json:"kind"`
	Index int    `json:"index"`
	Counterexample
}

type verdictSummary struct {
	Kind            string `json:"kind"`
	Explored        int    `json:"explored"`
	Distinct        int    `json:"distinct"`
	Pruned          int    `json:"pruned"`
	Frontier        int    `json:"frontier"`
	Deepest         int    `json:"deepest"`
	Counterexamples int    `json:"counterexamples"`
}

// Summary returns the one-line human rendering used by the CLI.
func (r *Report) Summary() string {
	verdict := "OK"
	if len(r.Counterexamples) > 0 {
		verdict = fmt.Sprintf("FAIL (%d counterexample(s))", len(r.Counterexamples))
	}
	return fmt.Sprintf("%s: %s strategy=%s explored=%d distinct=%d pruned=%d frontier=%d deepest=%d",
		r.Target, verdict, r.Strategy, r.Explored, r.Distinct, r.Pruned, r.Frontier, r.Deepest)
}
