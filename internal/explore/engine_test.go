package explore

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"

	"rtlock/internal/audit"
	"rtlock/internal/sim"
)

// syntheticTarget simulates a system with `points` decision positions of
// `fan` alternatives each. Its "journal hash" is the pick sequence, so
// every distinct schedule is a distinct behavior, and `fail` marks pick
// sequences that violate. It records every executed schedule.
type syntheticTarget struct {
	points, fan int
	fail        func(picks []int) bool

	mu   sync.Mutex
	runs [][]int
}

func (s *syntheticTarget) target() Target {
	return Target{
		Name: "synthetic",
		Run: func(ch sim.Chooser) (*Outcome, error) {
			picks := make([]int, s.points)
			for i := range picks {
				picks[i] = ch.Choose(sim.ChooseEvent, s.fan)
			}
			key := trimPicks(picks)
			s.mu.Lock()
			s.runs = append(s.runs, append([]int(nil), key...))
			s.mu.Unlock()
			out := &Outcome{JournalHash: fmt.Sprint(key)}
			if s.fail != nil && s.fail(picks) {
				out.Violations = []audit.Violation{{Rule: "synthetic", Detail: fmt.Sprint(key)}}
			}
			return out, nil
		},
	}
}

// sortedRuns returns the executed schedules in a canonical order.
func (s *syntheticTarget) sortedRuns() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.runs))
	for i, r := range s.runs {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// TestDFSNoScheduleExploredTwice pins the visited-set/pruning guarantee:
// with a budget covering the whole bounded tree, DFS executes every
// schedule exactly once and exhausts the frontier.
func TestDFSNoScheduleExploredTwice(t *testing.T) {
	syn := &syntheticTarget{points: 5, fan: 3}
	rep, err := Run(syn.target(), Options{Schedules: 1000, MaxDepth: 5, Branch: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * 3 * 3 * 3 * 3 // {0,1,2}^5
	if rep.Explored != want {
		t.Fatalf("explored %d schedules, want the full tree %d", rep.Explored, want)
	}
	if rep.Frontier != 0 {
		t.Fatalf("frontier %d after exhausting the tree, want 0", rep.Frontier)
	}
	if rep.Distinct != want {
		t.Fatalf("distinct %d, want %d", rep.Distinct, want)
	}
	runs := syn.sortedRuns()
	for i := 1; i < len(runs); i++ {
		if runs[i] == runs[i-1] {
			t.Fatalf("schedule %s executed more than once", runs[i])
		}
	}
}

// TestDFSBranchAndDepthBounds pins the fan-out caps: Branch alternatives
// per position, MaxDepth deviating positions.
func TestDFSBranchAndDepthBounds(t *testing.T) {
	syn := &syntheticTarget{points: 6, fan: 4}
	rep, err := Run(syn.target(), Options{Schedules: 1000, MaxDepth: 3, Branch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; rep.Explored != want { // {0,1}^3, positions 3..5 canonical
		t.Fatalf("explored %d, want %d", rep.Explored, want)
	}
	for _, r := range syn.runs {
		if len(r) > 3 {
			t.Fatalf("schedule %v deviates beyond MaxDepth 3", r)
		}
		for _, p := range r {
			if p > 1 {
				t.Fatalf("schedule %v exceeds Branch 2", r)
			}
		}
	}
}

// TestDFSPrunesDuplicateHashes: schedules mapping to an already-seen
// state hash are counted as pruned and not expanded.
func TestDFSPrunesDuplicateHashes(t *testing.T) {
	// Collapse every schedule to one of two behaviors: "first pick
	// canonical" vs not. After the first two distinct behaviors, every
	// further schedule is a duplicate and its subtree is pruned.
	syn := &syntheticTarget{points: 4, fan: 2}
	tgt := syn.target()
	inner := tgt.Run
	tgt.Run = func(ch sim.Chooser) (*Outcome, error) {
		out, err := inner(ch)
		if err != nil {
			return nil, err
		}
		h := "canonical"
		if len(out.JournalHash) > 2 { // non-empty pick list
			h = "deviant"
		}
		out.JournalHash = h
		return out, nil
	}
	rep, err := Run(tgt, Options{Schedules: 100, MaxDepth: 4, Branch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Distinct != 2 {
		t.Fatalf("distinct %d, want 2", rep.Distinct)
	}
	if rep.Pruned != rep.Explored-2 {
		t.Fatalf("pruned %d of %d explored, want all but 2", rep.Pruned, rep.Explored)
	}
}

// TestWorkersDoNotChangeExploredSet pins the acceptance criterion:
// -workers=4 explores exactly the same schedule set as -workers=1, and
// the reports match field for field.
func TestWorkersDoNotChangeExploredSet(t *testing.T) {
	for _, strat := range []Strategy{DFS, Random} {
		syn1 := &syntheticTarget{points: 6, fan: 3, fail: func(p []int) bool { return p[2] == 2 && p[4] == 1 }}
		syn4 := &syntheticTarget{points: 6, fan: 3, fail: func(p []int) bool { return p[2] == 2 && p[4] == 1 }}
		opts := Options{Strategy: strat, Schedules: 120, MaxDepth: 6, Branch: 3, Seed: 7, Minimize: true}
		opts1, opts4 := opts, opts
		opts1.Workers = 1
		opts4.Workers = 4
		rep1, err := Run(syn1.target(), opts1)
		if err != nil {
			t.Fatal(err)
		}
		rep4, err := Run(syn4.target(), opts4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep1, rep4) {
			t.Fatalf("%s: workers=1 and workers=4 reports differ:\n%+v\nvs\n%+v", strat, rep1, rep4)
		}
		r1, r4 := syn1.sortedRuns(), syn4.sortedRuns()
		if !reflect.DeepEqual(r1, r4) {
			t.Fatalf("%s: workers=1 and workers=4 explored different schedule sets", strat)
		}
	}
}

// TestVerdictByteIdenticalAcrossRunsAndGOMAXPROCS holds the explorer's
// verdict output to the journal's determinism bar.
func TestVerdictByteIdenticalAcrossRunsAndGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	render := func() []byte {
		syn := &syntheticTarget{points: 5, fan: 3, fail: func(p []int) bool { return p[1] == 1 && p[3] == 2 }}
		rep, err := Run(syn.target(), Options{Strategy: Random, Schedules: 80, MaxDepth: 5, Branch: 3, Seed: 11, Workers: 4, Minimize: true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteVerdict(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	runtime.GOMAXPROCS(1)
	a := render()
	runtime.GOMAXPROCS(8)
	b := render()
	c := render()
	if !bytes.Equal(a, b) || !bytes.Equal(b, c) {
		t.Fatalf("verdict output differs across runs/GOMAXPROCS:\n%s\nvs\n%s\nvs\n%s", a, b, c)
	}
	if !bytes.Contains(a, []byte(`"kind":"counterexample"`)) {
		t.Fatalf("expected a counterexample in the verdict:\n%s", a)
	}
}

// TestEngineFindsAndMinimizesSyntheticViolation: end-to-end on the
// synthetic target, the engine finds the violating schedule and the
// shrinker reduces it to the minimal pick set.
func TestEngineFindsAndMinimizesSyntheticViolation(t *testing.T) {
	// Fails iff position 3 picked alternative 2 (a single necessary,
	// sufficient decision): the minimal schedule is [0 0 0 2].
	syn := &syntheticTarget{points: 6, fan: 3, fail: func(p []int) bool { return p[3] == 2 }}
	rep, err := Run(syn.target(), Options{Schedules: 400, MaxDepth: 6, Branch: 3, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) != 1 {
		t.Fatalf("got %d counterexamples, want 1 (one rule)", len(rep.Counterexamples))
	}
	ce := rep.Counterexamples[0]
	if !ce.Minimized {
		t.Fatalf("counterexample not minimized: %+v", ce)
	}
	if want := []int{0, 0, 0, 2}; !reflect.DeepEqual(ce.Schedule, want) {
		t.Fatalf("minimized schedule %v, want %v", ce.Schedule, want)
	}
	if ce.Rule != "synthetic" {
		t.Fatalf("rule %q, want synthetic", ce.Rule)
	}
}

// TestRandomStrategyIsSeedDeterministic: same seed, same walks; a
// different seed explores a different schedule multiset.
func TestRandomStrategyIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) (*Report, []string) {
		syn := &syntheticTarget{points: 8, fan: 3}
		rep, err := Run(syn.target(), Options{Strategy: Random, Schedules: 40, MaxDepth: 8, Branch: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return rep, syn.sortedRuns()
	}
	repA, runsA := run(3)
	repB, runsB := run(3)
	if !reflect.DeepEqual(repA, repB) || !reflect.DeepEqual(runsA, runsB) {
		t.Fatal("same seed produced different explorations")
	}
	_, runsC := run(4)
	if reflect.DeepEqual(runsA, runsC) {
		t.Fatal("different seeds produced identical walks (suspicious)")
	}
}

// TestOptionsValidate rejects unknown strategies.
func TestOptionsValidate(t *testing.T) {
	syn := &syntheticTarget{points: 2, fan: 2}
	if _, err := Run(syn.target(), Options{Strategy: "bfs"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
