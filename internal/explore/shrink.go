package explore

// Shrink reduces a failing pick sequence to a locally minimal one: it
// returns a schedule that still satisfies fails, from which no tail can
// be dropped, no single pick canonicalized to 0, and no single pick
// decremented without losing the failure (up to the run budget). fails
// must report whether a candidate schedule still exhibits the failure;
// Shrink calls it at most budget times and assumes the input itself
// fails (it is never re-run unmodified).
//
// The reduction is delta-debugging shaped: a halving truncation pass
// finds a short failing prefix fast, then per-position canonicalization
// and decrement passes sweep right-to-left until a full round makes no
// progress. complete reports whether that fixed point was reached
// within budget — when false the result is smaller but not proven
// minimal.
func Shrink(picks []int, budget int, fails func([]int) bool) (min []int, runs int, complete bool) {
	cur := append([]int(nil), trimPicks(picks)...)
	starved := false // a candidate was skipped for lack of budget
	try := func(cand []int) bool {
		if runs >= budget {
			starved = true
			return false
		}
		runs++
		return fails(cand)
	}
	changed := true
	for changed && !starved {
		changed = false
		// Truncation, halving: drop the biggest failing tail first.
		for cut := len(cur) / 2; cut > 0; {
			cand := trimPicks(cur[:len(cur)-cut])
			if try(append([]int(nil), cand...)) {
				cur = append([]int(nil), cand...)
				changed = true
				cut = len(cur) / 2
			} else {
				cut /= 2
			}
		}
		// Canonicalize single picks, newest decision first.
		for i := len(cur) - 1; i >= 0 && !starved; i-- {
			if i >= len(cur) || cur[i] == 0 {
				continue
			}
			cand := append([]int(nil), cur...)
			cand[i] = 0
			cand = trimPicks(cand)
			if try(cand) {
				cur = append([]int(nil), cand...)
				changed = true
			}
		}
		// Decrement surviving picks toward canonical.
		for i := len(cur) - 1; i >= 0 && !starved; i-- {
			if i >= len(cur) {
				continue
			}
			for cur[i] > 1 && !starved {
				cand := append([]int(nil), cur...)
				cand[i]--
				if !try(cand) {
					break
				}
				cur = cand
				changed = true
			}
		}
	}
	return trimPicks(cur), runs, !changed && !starved
}
