package explore

import (
	"reflect"
	"testing"
)

// TestShrinkConvergesToSinglePick: one decision is necessary and
// sufficient; everything else must shrink away.
func TestShrinkConvergesToSinglePick(t *testing.T) {
	fails := func(p []int) bool { return len(p) > 1 && p[1] >= 1 }
	min, runs, complete := Shrink([]int{2, 1, 0, 2, 0, 1}, 500, fails)
	if !complete {
		t.Fatalf("shrink incomplete after %d runs", runs)
	}
	if want := []int{0, 1}; !reflect.DeepEqual(min, want) {
		t.Fatalf("shrunk to %v, want %v", min, want)
	}
}

// TestShrinkKeepsAllNecessaryPicks: two decisions are jointly
// necessary; neither may be dropped, but their values must reach the
// lowest failing alternatives.
func TestShrinkKeepsAllNecessaryPicks(t *testing.T) {
	fails := func(p []int) bool {
		return len(p) > 4 && p[1] >= 1 && p[4] >= 2
	}
	min, _, complete := Shrink([]int{0, 3, 2, 0, 3, 1, 2}, 500, fails)
	if !complete {
		t.Fatal("shrink incomplete")
	}
	if want := []int{0, 1, 0, 0, 2}; !reflect.DeepEqual(min, want) {
		t.Fatalf("shrunk to %v, want %v", min, want)
	}
}

// TestShrinkRespectsBudget: the shrinker never exceeds its run budget
// and reports incompleteness when it runs out.
func TestShrinkRespectsBudget(t *testing.T) {
	calls := 0
	fails := func(p []int) bool {
		calls++
		return len(p) > 7 && p[7] >= 1
	}
	min, runs, complete := Shrink([]int{1, 1, 1, 1, 1, 1, 1, 1}, 3, fails)
	if calls > 3 || runs > 3 {
		t.Fatalf("budget 3 exceeded: %d calls, %d reported runs", calls, runs)
	}
	if complete {
		t.Fatalf("shrink claimed completeness after %d of many needed runs (min=%v)", runs, min)
	}
}

// TestShrinkIsIdempotentOnMinimalInput: an already-minimal schedule
// survives unchanged.
func TestShrinkIsIdempotentOnMinimalInput(t *testing.T) {
	fails := func(p []int) bool { return len(p) == 3 && p[0] == 0 && p[1] == 0 && p[2] == 1 }
	min, _, complete := Shrink([]int{0, 0, 1}, 100, fails)
	if !complete {
		t.Fatal("shrink incomplete")
	}
	if want := []int{0, 0, 1}; !reflect.DeepEqual(min, want) {
		t.Fatalf("minimal input changed to %v", min)
	}
}
