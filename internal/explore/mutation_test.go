package explore

import (
	"testing"

	"rtlock/internal/audit"
	"rtlock/internal/core"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
	"rtlock/internal/txn"
	"rtlock/internal/workload"
)

// abbaTarget is the seeded-mutation fixture: two update transactions
// with opposite lock orders (T1: A then B, T2: B then A) arriving on
// the same tick. The priority ceiling protocol makes this workload
// deadlock-free — whichever transaction locks first raises the system
// ceiling above the other's priority, so the late transaction blocks
// before holding anything. Breaking the ceiling comparison for T1 (via
// core.SetCeilingBypassForTest) re-admits the classic ABBA deadlock,
// but only under the non-canonical arrival order where T2 locks B
// before T1 locks A. The canonical schedule still passes: T1 is
// dispatched first, locks A, and the intact ceiling check holds T2 at
// the door. Only exploration can expose the bug.
func abbaTarget() Target {
	return Target{
		Name: "single/PCP-mutated",
		Run: func(ch sim.Chooser) (*Outcome, error) {
			jrn := journal.New(1, "explore/mutation/pcp-abba")
			sys, err := txn.NewSystem(txn.Config{
				CPUPerObj:     5 * sim.Millisecond,
				CPUDiscipline: sim.PreemptivePriority,
				NewManager:    func(k *sim.Kernel) core.Manager { return core.NewCeiling(k) },
				Journal:       jrn,
			})
			if err != nil {
				return nil, err
			}
			load := []*workload.Txn{
				{ID: 1, Kind: workload.Update, Arrival: 0, Deadline: sim.Time(200 * sim.Millisecond),
					Ops: []workload.Op{{Obj: 0, Mode: core.Write}, {Obj: 1, Mode: core.Write}}},
				{ID: 2, Kind: workload.Update, Arrival: 0, Deadline: sim.Time(300 * sim.Millisecond),
					Ops: []workload.Op{{Obj: 1, Mode: core.Write}, {Obj: 0, Mode: core.Write}}},
			}
			sys.K.SetChooser(ch)
			sys.Load(load)
			sys.Run()
			return &Outcome{
				JournalHash: jrn.HashString(),
				Violations:  audit.Run(jrn, audit.ForManager(sys.Mgr.Name())...),
			}, nil
		},
	}
}

// TestExplorerFindsInjectedCeilingBug is the explorer's seeded-mutation
// self-test: break the ceiling check for one transaction, confirm the
// canonical schedule still passes, and assert the explorer finds a
// violating schedule within a small budget and shrinks it to a locally
// minimal decision trace that replays to the same violation.
func TestExplorerFindsInjectedCeilingBug(t *testing.T) {
	core.SetCeilingBypassForTest(func(id int64) bool { return id == 1 })
	defer core.SetCeilingBypassForTest(nil)
	tgt := abbaTarget()

	can, err := tgt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(can.Violations) > 0 {
		t.Fatalf("mutation is too strong: canonical schedule already fails: %v", can.Violations)
	}

	rep, err := Run(tgt, Options{Strategy: DFS, Schedules: 64, MaxDepth: 16, Branch: 3, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) == 0 {
		t.Fatalf("explorer missed the injected ceiling bug: %s", rep.Summary())
	}
	ce := rep.Counterexamples[0]
	if ce.Rule != "deadlock-free" {
		t.Fatalf("counterexample rule = %q, want deadlock-free (violations: %v)", ce.Rule, ce.Violations)
	}
	if !ce.Minimized {
		t.Fatalf("shrinker did not certify minimality: %+v", ce)
	}
	if len(ce.Schedule) == 0 {
		t.Fatal("minimized schedule is empty — the violation would be canonical, not schedule-dependent")
	}

	// The minimized decision trace must replay to the same deadlock.
	replay, err := tgt.Run(replayChooser(ce.Schedule))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range replay.Violations {
		if v.Rule == "deadlock-free" {
			found = true
		}
	}
	if !found {
		t.Fatalf("minimized schedule %v did not replay to a deadlock: %v", ce.Schedule, replay.Violations)
	}
	if replay.JournalHash != ce.JournalHash {
		t.Fatalf("replayed journal hash %s != counterexample hash %s", replay.JournalHash, ce.JournalHash)
	}

	// Local minimality, checked directly: dropping the last decision or
	// lowering any single pick must lose the failure.
	for i := range ce.Schedule {
		if ce.Schedule[i] == 0 {
			continue
		}
		cand := append([]int(nil), ce.Schedule...)
		cand[i]--
		out, err := tgt.Run(replayChooser(trimPicks(cand)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Violations) > 0 {
			t.Fatalf("schedule %v is not minimal: %v still fails", ce.Schedule, trimPicks(cand))
		}
	}
}

// TestExplorerExoneratesIntactCeiling is the control: the same ABBA
// workload without the mutation explores clean — every reachable
// schedule satisfies the PCP auditors, so the self-test's detection is
// attributable to the injected bug alone.
func TestExplorerExoneratesIntactCeiling(t *testing.T) {
	tgt := abbaTarget()
	rep, err := Run(tgt, Options{Strategy: DFS, Schedules: 256, MaxDepth: 16, Branch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) != 0 {
		t.Fatalf("intact PCP produced counterexamples: %s %v", rep.Summary(), rep.Counterexamples[0].Violations)
	}
	if rep.Deepest == 0 {
		t.Fatalf("exploration was vacuous (no decision points reached): %s", rep.Summary())
	}
}
