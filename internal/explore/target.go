package explore

import (
	"errors"
	"fmt"
	"sync"

	"rtlock/internal/audit"
	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/dist"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
	"rtlock/internal/txn"
	"rtlock/internal/workload"
)

// journalPool recycles journals across schedule executions: the engine
// runs hundreds of full simulations per exploration, and each one's
// record buffer (thousands of records) would otherwise be regrown from
// nothing. Reset drops the records but keeps the buffers. Pooling is
// invisible to results — a journal's contents are a pure function of
// the run appended into it — so worker scheduling still affects wall
// clock only, never outcomes.
var journalPool = sync.Pool{New: func() any { return journal.New(0, "") }}

func getJournal(seed int64, config string) *journal.Journal {
	j := journalPool.Get().(*journal.Journal)
	j.Reset(seed, config)
	return j
}

func putJournal(j *journal.Journal) { journalPool.Put(j) }

// Exploration workloads default to small, high-contention runs: the
// engine executes hundreds of full simulations per exploration, and
// contention — not load volume — is what makes decision points matter.
// The read-only fraction matters most: shared read locks are what make
// one release wake several waiters on the same tick, and those group
// wakes are the densest ChooseEvent sites in a single-site run.
const (
	defaultCount     = 24
	defaultDBSize    = 8
	defaultMeanSize  = 5
	defaultCPUPerObj = 5 * sim.Millisecond
	defaultInterarr  = 10 * sim.Millisecond
	defaultReadOnly  = 0.4
)

// SingleSiteOpts configures a single-site exploration target. The
// protocol arrives as an injected constructor (typically from
// experiments.ManagerFor) so this package stays independent of the
// protocol registry — experiments itself imports explore for the
// sweep.
type SingleSiteOpts struct {
	// Proto labels the protocol in reports and the journal config key
	// (the paper's letter, e.g. "C").
	Proto string
	// NewManager constructs the lock manager under test (required).
	NewManager func(*sim.Kernel) core.Manager
	// Discipline is the CPU scheduling discipline the protocol runs on.
	Discipline sim.Discipline
	// Seed drives the workload stream (default 1).
	Seed int64
	// Count, DBSize, MeanSize, CPUPerObj, IOPerObj, MeanInterarrival,
	// and ReadOnlyFrac shape the workload (exploration-sized defaults).
	// ReadOnlyFrac zero takes the contention-tuned default; pass a
	// negative value for a workload with no read-only transactions.
	Count            int
	DBSize           int
	MeanSize         int
	CPUPerObj        sim.Duration
	IOPerObj         sim.Duration
	MeanInterarrival sim.Duration
	ReadOnlyFrac     float64
}

// SingleSiteTarget builds the exploration target for one single-site
// protocol. Each Run constructs an entirely fresh simulation (catalog,
// workload, journal, kernel), so concurrent schedule executions share
// nothing.
func SingleSiteTarget(o SingleSiteOpts) (Target, error) {
	if o.NewManager == nil {
		return Target{}, errors.New("explore: SingleSiteOpts.NewManager is required")
	}
	if o.Discipline == 0 {
		o.Discipline = sim.PreemptivePriority
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Count <= 0 {
		o.Count = defaultCount
	}
	if o.DBSize <= 0 {
		o.DBSize = defaultDBSize
	}
	if o.MeanSize <= 0 {
		o.MeanSize = defaultMeanSize
	}
	if o.CPUPerObj <= 0 {
		o.CPUPerObj = defaultCPUPerObj
	}
	if o.MeanInterarrival <= 0 {
		o.MeanInterarrival = defaultInterarr
	}
	switch {
	case o.ReadOnlyFrac == 0:
		o.ReadOnlyFrac = defaultReadOnly
	case o.ReadOnlyFrac < 0:
		o.ReadOnlyFrac = 0
	}
	key := fmt.Sprintf("explore/single/%s/db=%d/count=%d/size=%d/ro=%g",
		o.Proto, o.DBSize, o.Count, o.MeanSize, o.ReadOnlyFrac)
	// The catalog and workload are pure functions of the options, so
	// they are generated once here and shared read-only by every
	// schedule execution: the runtime only reads Txn fields (Ops, the
	// access sets, timing), never mutates them.
	cat, err := db.NewCatalog(1, o.DBSize)
	if err != nil {
		return Target{}, err
	}
	load, err := workload.Generate(workload.Params{
		Seed:             o.Seed,
		Catalog:          cat,
		Count:            o.Count,
		MeanInterarrival: o.MeanInterarrival,
		MeanSize:         o.MeanSize,
		ReadOnlyFrac:     o.ReadOnlyFrac,
		PerObjCost:       o.CPUPerObj + o.IOPerObj,
		SlackMin:         4,
		SlackMax:         8,
	})
	if err != nil {
		return Target{}, err
	}
	return Target{
		Name: "single/" + o.Proto,
		Run: func(ch sim.Chooser) (*Outcome, error) {
			jrn := getJournal(o.Seed, key)
			defer putJournal(jrn)
			sys, err := txn.NewSystem(txn.Config{
				CPUPerObj:     o.CPUPerObj,
				IOPerObj:      o.IOPerObj,
				CPUDiscipline: o.Discipline,
				NewManager:    o.NewManager,
				Journal:       jrn,
			})
			if err != nil {
				return nil, err
			}
			sys.K.SetChooser(ch)
			sys.Load(load)
			sys.Run()
			return &Outcome{
				JournalHash: jrn.HashString(),
				Violations:  audit.Run(jrn, audit.ForManager(sys.Mgr.Name())...),
			}, nil
		},
	}, nil
}

// DistributedOpts configures a distributed exploration target.
type DistributedOpts struct {
	// Global selects the global-ceiling-manager architecture; false
	// selects local ceilings over full replication.
	Global bool
	// Seed drives the workload stream (default 1).
	Seed int64
	// Sites, Count, DBSize, MeanSize, CommDelay, CPUPerObj, and
	// ReadOnlyFrac shape the cluster and workload.
	Sites        int
	Count        int
	DBSize       int
	MeanSize     int
	CommDelay    sim.Duration
	CPUPerObj    sim.Duration
	ReadOnlyFrac float64
}

// DistributedTarget builds the exploration target for one distributed
// architecture. The distributed decision points (message delivery
// order, 2PC prepare rotation) only exist here.
func DistributedTarget(o DistributedOpts) (Target, error) {
	approach := dist.LocalCeiling
	if o.Global {
		approach = dist.GlobalCeiling
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Sites <= 0 {
		o.Sites = 3
	}
	if o.Count <= 0 {
		o.Count = 10
	}
	if o.DBSize <= 0 {
		o.DBSize = defaultDBSize
	}
	if o.MeanSize <= 0 {
		o.MeanSize = 3
	}
	if o.CommDelay <= 0 {
		o.CommDelay = 10 * sim.Millisecond
	}
	if o.CPUPerObj <= 0 {
		o.CPUPerObj = defaultCPUPerObj
	}
	key := fmt.Sprintf("explore/dist/%s/sites=%d/db=%d/count=%d/size=%d/ro=%g",
		approach, o.Sites, o.DBSize, o.Count, o.MeanSize, o.ReadOnlyFrac)
	// The workload depends only on the catalog layout, which is a pure
	// function of (Sites, DBSize); generate it once against a throwaway
	// cluster's catalog and share it read-only across schedules.
	layout, err := dist.NewCluster(dist.Config{
		Approach:  approach,
		Sites:     o.Sites,
		Objects:   o.DBSize,
		CommDelay: o.CommDelay,
		CPUPerObj: o.CPUPerObj,
	})
	if err != nil {
		return Target{}, err
	}
	load, err := workload.Generate(workload.Params{
		Seed:             o.Seed,
		Catalog:          layout.Catalog,
		Count:            o.Count,
		MeanInterarrival: 30 * sim.Millisecond,
		MeanSize:         o.MeanSize,
		ReadOnlyFrac:     o.ReadOnlyFrac,
		PerObjCost:       o.CPUPerObj,
		SlackMin:         4,
		SlackMax:         8,
		LocalWriteSets:   true,
	})
	if err != nil {
		return Target{}, err
	}
	return Target{
		Name: "dist/" + approach.String(),
		Run: func(ch sim.Chooser) (*Outcome, error) {
			jrn := getJournal(o.Seed, key)
			defer putJournal(jrn)
			cluster, err := dist.NewCluster(dist.Config{
				Approach:  approach,
				Sites:     o.Sites,
				Objects:   o.DBSize,
				CommDelay: o.CommDelay,
				CPUPerObj: o.CPUPerObj,
				Journal:   jrn,
			})
			if err != nil {
				return nil, err
			}
			cluster.K.SetChooser(ch)
			cluster.Load(load)
			cluster.Run()
			return &Outcome{
				JournalHash: jrn.HashString(),
				Violations:  audit.Run(jrn, audit.ForApproach(approach.String())...),
			}, nil
		},
	}, nil
}
