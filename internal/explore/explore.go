// Package explore is a schedule-space exploration engine — systematic
// concurrency testing over the deterministic simulation kernel.
//
// The kernel executes exactly one canonical interleaving per
// (seed, config) pair; bugs that only surface under a rare dispatch
// order are invisible to it. This package drives the kernel through its
// scheduling decision points (sim.ChoicePoint: simultaneous-event
// ordering, CPU ready-queue ties, message delivery order, 2PC prepare
// fan-out rotation) with a chooser that substitutes alternative picks,
// turning the single canonical run into a bounded tree of schedules.
// Every explored schedule runs under the internal/audit invariant
// auditors; a violation yields the decision trace that produced it plus
// a delta-debugging shrinker that reduces the trace to a locally
// minimal failing schedule, replayable through the journal machinery.
//
// Exploration is itself deterministic: a fixed (target, options) pair
// explores the same schedule set, in the same order, producing
// byte-identical verdict output — regardless of worker count or
// GOMAXPROCS. Workers parallelize the execution of an already-decided
// batch of schedules; they never influence which schedules are chosen.
package explore

import (
	"fmt"

	"rtlock/internal/audit"
	"rtlock/internal/faults"
	"rtlock/internal/sim"
)

// Strategy selects how the schedule tree is walked.
type Strategy string

const (
	// DFS walks the decision tree depth-first: each explored schedule's
	// trace is branched at every canonical-suffix position (bounded by
	// MaxDepth and Branch), newest branches first. Complete up to the
	// bounds: with generous budgets it enumerates every schedule in the
	// bounded tree exactly once.
	DFS Strategy = "dfs"
	// Random runs independent seeded random walks: schedule i draws its
	// picks from an RNG derived from (Seed, i). Sparse but unbiased
	// coverage of deep schedules DFS would not reach within budget.
	Random Strategy = "random"
)

// Options bounds and parameterizes an exploration.
type Options struct {
	// Strategy is DFS (default) or Random.
	Strategy Strategy
	// Schedules is the budget: the maximum number of schedules executed
	// (default 64). The canonical schedule is always the first.
	Schedules int
	// MaxDepth bounds how many decision positions may deviate from
	// canonical (default 24). Decisions beyond the bound are canonical.
	MaxDepth int
	// Branch caps the alternatives considered per decision position,
	// canonical included (default 3): a decision with n alternatives
	// fans out min(n, Branch) ways.
	Branch int
	// Workers sizes the parallel runner pool (default 1). Worker count
	// affects wall-clock time only, never the explored schedule set,
	// its order, or the verdict output.
	Workers int
	// Seed drives the Random strategy's walks (default 1). DFS ignores
	// it.
	Seed int64
	// Minimize shrinks each counterexample to a locally minimal failing
	// schedule before reporting it.
	Minimize bool
	// ShrinkBudget caps the schedules the shrinker may execute per
	// counterexample (default 200).
	ShrinkBudget int
	// MaxCounterexamples stops the exploration after this many distinct
	// violating schedules (default 3; distinct = first violation's rule
	// not seen before, or any violation when that cap is not yet hit).
	MaxCounterexamples int
}

func (o *Options) fill() {
	if o.Strategy == "" {
		o.Strategy = DFS
	}
	if o.Schedules <= 0 {
		o.Schedules = 64
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 24
	}
	if o.Branch <= 1 {
		o.Branch = 3
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 200
	}
	if o.MaxCounterexamples <= 0 {
		o.MaxCounterexamples = 3
	}
}

func (o Options) validate() error {
	if o.Strategy != DFS && o.Strategy != Random {
		return fmt.Errorf("explore: unknown strategy %q (want %q or %q)", o.Strategy, DFS, Random)
	}
	return nil
}

// Target is one system under exploration. Run must build a fresh
// simulation (kernel, journal, workload), attach the chooser before any
// event is dispatched, run to completion, and audit the journal. It is
// called concurrently from the worker pool, so it must not share
// mutable state across calls.
type Target struct {
	// Name labels the target in reports ("single/C", "dist/global", …).
	Name string
	// Run executes one schedule under the chooser's decisions.
	Run func(ch sim.Chooser) (*Outcome, error)
	// RunPlan executes the canonical schedule under a fixed fault plan
	// instead of a chooser — how an exported counterexample's FaultPlan
	// is replayed. Only fault-space targets provide it.
	RunPlan func(plan *faults.Plan) (*Outcome, error)
}

// Outcome is one executed schedule's result.
type Outcome struct {
	// JournalHash is the canonical hash of the run's journal — the
	// state hash behind visited-set pruning and the distinct-behavior
	// count. Runs reaching the same hash executed identically.
	JournalHash string
	// Violations are the auditor findings for this schedule.
	Violations []audit.Violation
	// FaultPlan is the failure schedule this run committed to (nil for
	// fault-free targets or when every fault decision was canonical).
	FaultPlan *faults.Plan
}

// Decision is one consulted decision point in a schedule's trace.
type Decision struct {
	// Point is the decision kind (sim.ChoicePoint).
	Point sim.ChoicePoint `json:"point"`
	// N is the number of alternatives that were available.
	N int `json:"n"`
	// Pick is the chosen alternative (0 = canonical).
	Pick int `json:"pick"`
}

// Counterexample is one violating schedule.
type Counterexample struct {
	// Schedule is the decision pick sequence reproducing the failure
	// (trailing canonical picks trimmed): replay it with a prefix
	// chooser to regenerate the violating journal.
	Schedule []int `json:"schedule"`
	// Rule is the first firing auditor's name.
	Rule string `json:"rule"`
	// Violations are the auditor findings of the (possibly minimized)
	// failing schedule.
	Violations []string `json:"violations"`
	// JournalHash identifies the failing run for journal-level replay.
	JournalHash string `json:"journal_hash"`
	// Minimized reports whether the shrinker ran to local minimality.
	Minimized bool `json:"minimized"`
	// FoundLen is the pre-shrink schedule length (trimmed), for
	// measuring how much the shrinker removed.
	FoundLen int `json:"found_len"`
	// ShrinkRuns is the number of schedules the shrinker executed.
	ShrinkRuns int `json:"shrink_runs"`
	// FaultPlan is the chosen failure schedule of the final failing run
	// (nil when it injected no faults) — exportable as a runnable
	// faults spec and replayable through Target.RunPlan.
	FaultPlan *faults.Plan `json:"fault_plan,omitempty"`
	// FaultDecisions counts the non-canonical fault picks (crash,
	// message fate, partition cut) in the final failing schedule.
	FaultDecisions int `json:"fault_decisions,omitempty"`
	// FaultOnly reports that every non-canonical pick in the final
	// failing schedule is a fault decision: FaultPlan alone reproduces
	// the failure byte-identically, no scheduling trace needed.
	FaultOnly bool `json:"fault_only,omitempty"`
}

// Report is one exploration's result.
type Report struct {
	// Target names the explored system.
	Target string `json:"target"`
	// Strategy, Seed, Schedules, MaxDepth, and Branch echo the bounds
	// the numbers below were obtained under.
	Strategy  Strategy `json:"strategy"`
	Seed      int64    `json:"seed"`
	Schedules int      `json:"schedules"`
	MaxDepth  int      `json:"max_depth"`
	Branch    int      `json:"branch"`
	// Explored counts schedules actually executed.
	Explored int `json:"explored"`
	// Distinct counts distinct journal hashes — schedules whose
	// executions genuinely differed.
	Distinct int `json:"distinct"`
	// Pruned counts explored schedules whose journal hash had already
	// been reached (their subtrees were not expanded).
	Pruned int `json:"pruned"`
	// Frontier counts schedules generated but not executed when the
	// budget ran out (0 = the bounded tree was exhausted).
	Frontier int `json:"frontier"`
	// Deepest is the longest decision trace observed.
	Deepest int `json:"deepest"`
	// Counterexamples lists the violating schedules found, in
	// discovery order.
	Counterexamples []Counterexample `json:"counterexamples"`
}

// isFaultPoint reports whether a decision point injects a fault rather
// than reordering the schedule.
func isFaultPoint(p sim.ChoicePoint) bool {
	switch p {
	case sim.ChooseCrash, sim.ChooseFate, sim.ChooseCut:
		return true
	}
	return false
}

// trimPicks drops trailing canonical picks: a schedule and its
// zero-extended forms execute identically, so the trimmed form is the
// canonical identity of a schedule.
func trimPicks(p []int) []int {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}
