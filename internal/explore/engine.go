package explore

import (
	"fmt"
)

// batchSize is the number of schedules handed to the worker pool at a
// time. It is a fixed constant, not derived from Options.Workers: the
// engine decides each batch's membership before any of it executes, so
// the explored schedule set is a pure function of (target, options) and
// workers only shorten the wall clock.
const batchSize = 8

// Run explores the target's schedule space under the given bounds and
// returns the verdict. It is deterministic: identical (target, options
// minus Workers) pairs produce identical reports.
func Run(t Target, o Options) (*Report, error) {
	o.fill()
	if err := o.validate(); err != nil {
		return nil, err
	}
	if t.Run == nil {
		return nil, fmt.Errorf("explore: target %q has no Run", t.Name)
	}
	e := &engine{
		t: t,
		o: o,
		rep: &Report{
			Target:          t.Name,
			Strategy:        o.Strategy,
			Seed:            o.Seed,
			Schedules:       o.Schedules,
			MaxDepth:        o.MaxDepth,
			Branch:          o.Branch,
			Counterexamples: []Counterexample{},
		},
		seenHash: make(map[string]bool),
		seenRule: make(map[string]bool),
	}
	var err error
	switch o.Strategy {
	case Random:
		err = e.runRandom()
	default:
		err = e.runDFS()
	}
	if err != nil {
		return nil, err
	}
	return e.rep, nil
}

type engine struct {
	t   Target
	o   Options
	rep *Report

	seenHash map[string]bool
	seenRule map[string]bool
	stop     bool // MaxCounterexamples reached
}

// runResult is one executed schedule.
type runResult struct {
	prefix []int
	trace  []Decision
	out    *Outcome
}

// execute runs one schedule under ch and collects its trace.
func (e *engine) execute(prefix []int, ch *traceChooser) (runResult, error) {
	out, err := e.t.Run(ch)
	if err != nil {
		return runResult{}, err
	}
	if out == nil {
		return runResult{}, fmt.Errorf("explore: target %q returned no outcome", e.t.Name)
	}
	return runResult{prefix: prefix, trace: ch.trace, out: out}, nil
}

// runDFS walks the decision tree depth-first. The frontier is a stack
// of pick prefixes; each executed schedule replays its prefix and
// extends canonically, then branches at every canonical-suffix decision
// position within the depth/branch bounds. Children are unique by
// construction (each deviates at a position its parent kept canonical),
// so no schedule is ever executed twice; the journal-hash visited set
// additionally prunes subtrees of executions that were reached twice
// via pick clamping or don't-care decisions.
func (e *engine) runDFS() error {
	stack := [][]int{nil} // canonical schedule first
	for len(stack) > 0 && e.rep.Explored < e.o.Schedules && !e.stop {
		n := batchSize
		if rem := e.o.Schedules - e.rep.Explored; n > rem {
			n = rem
		}
		if n > len(stack) {
			n = len(stack)
		}
		batch := make([][]int, n)
		for i := 0; i < n; i++ {
			batch[i] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		}
		results := runBatch(n, e.o.Workers, func(i int) (runResult, error) {
			return e.execute(batch[i], replayChooser(batch[i]))
		})
		for _, r := range results {
			if r.err != nil {
				return r.err
			}
			fresh := e.observe(r.val)
			if !fresh || e.stop {
				continue
			}
			// Branch the canonical suffix, deepest position pushed
			// last so it pops first (true backtracking order).
			limit := len(r.val.trace)
			if limit > e.o.MaxDepth {
				limit = e.o.MaxDepth
			}
			for pos := len(r.val.prefix); pos < limit; pos++ {
				fan := r.val.trace[pos].N
				if fan > e.o.Branch {
					fan = e.o.Branch
				}
				for alt := 1; alt < fan; alt++ {
					child := make([]int, pos+1)
					for j := 0; j < pos; j++ {
						child[j] = r.val.trace[j].Pick
					}
					child[pos] = alt
					stack = append(stack, child)
				}
			}
		}
	}
	e.rep.Frontier = len(stack)
	return nil
}

// runRandom executes independent seeded walks: schedule 0 is canonical,
// schedule i > 0 draws its picks from an RNG derived from (Seed, i).
// Walks are independent, so batching is mere parallelism here too.
func (e *engine) runRandom() error {
	next := 0
	for next < e.o.Schedules && !e.stop {
		n := batchSize
		if rem := e.o.Schedules - next; n > rem {
			n = rem
		}
		base := next
		results := runBatch(n, e.o.Workers, func(i int) (runResult, error) {
			idx := base + i
			if idx == 0 {
				return e.execute(nil, replayChooser(nil))
			}
			ch := randomChooser(mix(e.o.Seed, int64(idx)), e.o.MaxDepth, e.o.Branch)
			return e.execute(nil, ch)
		})
		next += n
		for _, r := range results {
			if r.err != nil {
				return r.err
			}
			e.observe(r.val)
		}
	}
	e.rep.Frontier = e.o.Schedules - next
	return nil
}

// observe folds one executed schedule into the report and reports
// whether its execution was fresh (journal hash not seen before).
func (e *engine) observe(r runResult) bool {
	e.rep.Explored++
	if len(r.trace) > e.rep.Deepest {
		e.rep.Deepest = len(r.trace)
	}
	if e.seenHash[r.out.JournalHash] {
		e.rep.Pruned++
		return false
	}
	e.seenHash[r.out.JournalHash] = true
	e.rep.Distinct++
	if len(r.out.Violations) > 0 {
		e.addCounterexample(r)
	}
	return true
}

// addCounterexample records (and optionally minimizes) one violating
// schedule. Only the first schedule per auditor rule is kept — repeats
// of a known failure mode add noise, not signal — and the exploration
// stops once MaxCounterexamples rules have fired.
func (e *engine) addCounterexample(r runResult) {
	rule := r.out.Violations[0].Rule
	if e.seenRule[rule] {
		return
	}
	e.seenRule[rule] = true

	picks := make([]int, len(r.trace))
	for i, d := range r.trace {
		picks[i] = d.Pick
	}
	picks = trimPicks(picks)
	ce := Counterexample{
		Schedule:    append([]int(nil), picks...),
		Rule:        rule,
		JournalHash: r.out.JournalHash,
		FoundLen:    len(picks),
	}
	final := r.out
	finalTrace := r.trace
	if e.o.Minimize && len(picks) > 0 {
		var lastFail *Outcome
		var lastTrace []Decision
		min, runs, complete := Shrink(picks, e.o.ShrinkBudget, func(cand []int) bool {
			res, err := e.execute(cand, replayChooser(cand))
			if err != nil || len(res.out.Violations) == 0 {
				return false
			}
			lastFail, lastTrace = res.out, res.trace
			return true
		})
		ce.Schedule = min
		ce.ShrinkRuns = runs
		ce.Minimized = complete
		if lastFail != nil {
			// Shrink adopts every candidate that still fails, so the last
			// failing run IS the minimal schedule: its trace and outcome
			// describe exactly what ce.Schedule reproduces.
			final, finalTrace = lastFail, lastTrace
		}
	}
	ce.JournalHash = final.JournalHash
	ce.Violations = make([]string, 0, len(final.Violations))
	for _, v := range final.Violations {
		ce.Violations = append(ce.Violations, v.String())
	}
	ce.FaultPlan = final.FaultPlan
	faultPicks, schedPicks := 0, 0
	for _, d := range finalTrace {
		if d.Pick == 0 {
			continue
		}
		if isFaultPoint(d.Point) {
			faultPicks++
		} else {
			schedPicks++
		}
	}
	ce.FaultDecisions = faultPicks
	ce.FaultOnly = faultPicks > 0 && schedPicks == 0
	e.rep.Counterexamples = append(e.rep.Counterexamples, ce)
	if len(e.rep.Counterexamples) >= e.o.MaxCounterexamples {
		e.stop = true
	}
}

// mix derives schedule i's RNG seed from the explore seed with a
// splitmix64 round, so consecutive schedules draw decorrelated streams.
func mix(seed, i int64) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
