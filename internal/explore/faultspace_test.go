package explore

import (
	"bytes"
	"encoding/json"
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/faults"
	"rtlock/internal/sim"
	"rtlock/internal/workload"
)

// walWeakeningTarget is the fault-space seeded-weakening fixture: a
// two-site global cluster running one update transaction homed at site
// 0 that writes object 2, whose primary is site 1 — so commit runs a
// two-site 2PC with site 1 as the sole participant. With weaken, site
// 1's WAL vote forces are dropped (dist.Config.WALForceFault): the
// participant proceeds as prepared, but a crash between its yes-vote
// and the decision's arrival loses the vote, and the recovery redo
// restores nothing — a recovery-durable violation. The crash window
// only opens under a non-canonical fault decision, so the canonical
// schedule stays clean and only fault-space exploration can expose the
// weakening.
func walWeakeningTarget(t *testing.T, weaken bool) Target {
	t.Helper()
	var hook func(db.SiteID, int64) bool
	if weaken {
		hook = func(site db.SiteID, _ int64) bool { return site == 1 }
	}
	// Crash decisions every 5ms across the 2PC exchange (vote lands at
	// ~12ms, the decision at ~32ms), with outages short enough that the
	// crashed site recovers — and redoes its WAL — well before run end.
	var points []int64
	for at := int64(5 * sim.Millisecond); at <= int64(60*sim.Millisecond); at += int64(5 * sim.Millisecond) {
		points = append(points, at)
	}
	tgt, err := FaultTarget(FaultOpts{
		Global:        true,
		Sites:         2,
		DBSize:        4,
		CommDelay:     10 * sim.Millisecond,
		CPUPerObj:     2 * sim.Millisecond,
		Space:         faults.Space{CrashPoints: points, DownFor: int64(25 * sim.Millisecond)},
		WALForceFault: hook,
		Load: []*workload.Txn{{
			ID: 1, Kind: workload.Update, Home: 0,
			Arrival: 0, Deadline: sim.Time(2 * sim.Second),
			Ops: []workload.Op{{Obj: 2, Mode: core.Write}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

var weakeningOpts = Options{
	Strategy: DFS, Schedules: 400, MaxDepth: 48, Branch: 3,
	Minimize: true, ShrinkBudget: 300, MaxCounterexamples: 8,
}

// TestFaultSpaceFindsDroppedWALForce is the fault-space loop-closing
// self-test: seed a durability weakening, confirm the canonical
// schedule still passes, and assert fault-space DFS finds the
// recovery-durable violation, shrinks it to a minimal fault schedule,
// and exports a fault plan that replays byte-identically without a
// chooser.
func TestFaultSpaceFindsDroppedWALForce(t *testing.T) {
	tgt := walWeakeningTarget(t, true)

	can, err := tgt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(can.Violations) > 0 {
		t.Fatalf("weakening is too strong: canonical schedule already fails: %v", can.Violations)
	}
	if can.FaultPlan != nil {
		t.Fatalf("canonical schedule chose faults: %v", can.FaultPlan)
	}

	rep, err := Run(tgt, weakeningOpts)
	if err != nil {
		t.Fatal(err)
	}
	var ce *Counterexample
	for i := range rep.Counterexamples {
		if rep.Counterexamples[i].Rule == "recovery-durable" {
			ce = &rep.Counterexamples[i]
			break
		}
	}
	if ce == nil {
		t.Fatalf("fault-space DFS missed the dropped WAL force: %s %+v", rep.Summary(), rep.Counterexamples)
	}
	if !ce.Minimized {
		t.Fatalf("shrinker did not certify minimality: %+v", ce)
	}
	if ce.FaultDecisions < 1 || ce.FaultDecisions > 4 {
		t.Fatalf("minimal fault schedule has %d fault decisions, want 1..4: %+v", ce.FaultDecisions, ce)
	}
	if !ce.FaultOnly {
		t.Fatalf("minimal schedule still depends on scheduling picks: %+v", ce)
	}
	if ce.FaultPlan == nil {
		t.Fatalf("fault-only counterexample carries no fault plan: %+v", ce)
	}

	// Export the fault plan as its JSON spec, parse it back, and replay
	// it without a chooser: the journal must be byte-identical (same
	// hash) and the durability violation must reproduce.
	data, err := json.Marshal(ce.FaultPlan)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse(data)
	if err != nil {
		t.Fatalf("exported fault plan does not parse: %v\n%s", err, data)
	}
	replay, err := tgt.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if replay.JournalHash != ce.JournalHash {
		t.Fatalf("fault-plan replay hash %s != counterexample hash %s (plan %s)",
			replay.JournalHash, ce.JournalHash, plan)
	}
	found := false
	for _, v := range replay.Violations {
		if v.Rule == "recovery-durable" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fault plan %s did not replay to the durability violation: %v", plan, replay.Violations)
	}
}

// TestFaultSpaceExoneratesIntactWAL is the control: the same cluster
// with intact WAL forcing explores clean across the whole crash space,
// so the self-test's detection is attributable to the seeded weakening
// alone.
func TestFaultSpaceExoneratesIntactWAL(t *testing.T) {
	tgt := walWeakeningTarget(t, false)
	rep, err := Run(tgt, weakeningOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) != 0 {
		t.Fatalf("intact WAL produced counterexamples: %s %v",
			rep.Summary(), rep.Counterexamples[0].Violations)
	}
	if rep.Deepest == 0 {
		t.Fatalf("fault exploration was vacuous (no decision points reached): %s", rep.Summary())
	}
}

// TestFaultSpaceWorkerIndependence pins the determinism contract for
// fault-space exploration: the explored set, verdict, and
// counterexamples are identical whether one worker or eight execute
// the batches.
func TestFaultSpaceWorkerIndependence(t *testing.T) {
	var verdicts [2]bytes.Buffer
	for i, workers := range []int{1, 8} {
		tgt := walWeakeningTarget(t, true)
		o := weakeningOpts
		o.Workers = workers
		rep, err := Run(tgt, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteVerdict(&verdicts[i], rep); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(verdicts[0].Bytes(), verdicts[1].Bytes()) {
		t.Fatalf("verdict depends on worker count:\n-- workers=1 --\n%s\n-- workers=8 --\n%s",
			verdicts[0].String(), verdicts[1].String())
	}
}
