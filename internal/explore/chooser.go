package explore

import (
	"math/rand"

	"rtlock/internal/sim"
)

// traceChooser replays a fixed pick prefix, then extends: canonically
// (DFS expansion, counterexample replay) or with a seeded RNG (random
// walks). Every consulted decision is recorded, so after the run the
// engine can branch the schedule at any position.
//
// Replayed picks are clamped into [0, n): a prefix recorded against a
// schedule that has since diverged degrades to canonical picks instead
// of panicking, which is what makes the shrinker's speculative
// truncations safe.
type traceChooser struct {
	prefix []int
	rng    *rand.Rand // nil = canonical extension
	depth  int        // positions past which even the RNG stays canonical
	branch int        // RNG pick cap (mirrors Options.Branch)
	trace  []Decision
	pos    int
}

// replayChooser returns a chooser reproducing picks then continuing
// canonically — the schedule identified by picks.
func replayChooser(picks []int) *traceChooser {
	return &traceChooser{prefix: picks}
}

// randomChooser returns a chooser drawing up to depth picks (each below
// branch) from the given stream, then continuing canonically.
func randomChooser(seed int64, depth, branch int) *traceChooser {
	return &traceChooser{rng: rand.New(rand.NewSource(seed)), depth: depth, branch: branch}
}

// Choose implements sim.Chooser.
func (c *traceChooser) Choose(p sim.ChoicePoint, n int) int {
	pick := 0
	switch {
	case c.pos < len(c.prefix):
		pick = c.prefix[c.pos]
		if pick < 0 {
			pick = 0
		}
		if pick >= n {
			pick = n - 1
		}
	case c.rng != nil && c.pos < c.depth:
		w := n
		if c.branch > 0 && c.branch < w {
			w = c.branch
		}
		pick = c.rng.Intn(w)
	}
	c.trace = append(c.trace, Decision{Point: p, N: n, Pick: pick})
	c.pos++
	return pick
}

// picks returns the trace's pick sequence, trailing canonicals trimmed.
func (c *traceChooser) picks() []int {
	out := make([]int, len(c.trace))
	for i, d := range c.trace {
		out[i] = d.Pick
	}
	return trimPicks(out)
}
