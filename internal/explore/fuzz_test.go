package explore

import (
	"encoding/json"
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/faults"
	"rtlock/internal/sim"
	"rtlock/internal/workload"
)

// fuzzFaultTarget is a tiny two-site fault-space target whose decision
// space surfaces all three fault choice kinds: crash points, message
// fates (duplicate allowed), and a partition cut.
func fuzzFaultTarget(f *testing.F) Target {
	f.Helper()
	tgt, err := FaultTarget(FaultOpts{
		Global:    true,
		Sites:     2,
		DBSize:    4,
		CommDelay: 10 * sim.Millisecond,
		CPUPerObj: 2 * sim.Millisecond,
		Space: faults.Space{
			CrashPoints: []int64{int64(10 * sim.Millisecond), int64(20 * sim.Millisecond)},
			DownFor:     int64(15 * sim.Millisecond),
			MaxMsgFates: 4,
			AllowDup:    true,
			CutPoints:   []int64{int64(15 * sim.Millisecond)},
			CutFor:      int64(20 * sim.Millisecond),
		},
		Load: []*workload.Txn{{
			ID: 1, Kind: workload.Update, Home: 0,
			Arrival: 0, Deadline: sim.Time(2 * sim.Second),
			Ops: []workload.Op{{Obj: 2, Mode: core.Write}},
		}},
	})
	if err != nil {
		f.Fatal(err)
	}
	return tgt
}

// FuzzFaultChoice drives the fault choice-point encoding with arbitrary
// pick sequences and checks the invariants counterexample replay rests
// on: a pick sequence executes deterministically (same journal hash on
// re-run), never panics the kernel or the fault machinery, and — when
// every non-canonical pick is a fault decision — the run's exported
// fault plan survives a JSON round trip and replays byte-identically
// through RunPlan without a chooser.
func FuzzFaultChoice(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2})
	f.Add([]byte{0, 1, 2, 1})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{3, 0, 2, 0, 1, 0, 0, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2})
	tgt := fuzzFaultTarget(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		picks := make([]int, len(data))
		for i, b := range data {
			picks[i] = int(b % 4)
		}
		ch := replayChooser(picks)
		out, err := tgt.Run(ch)
		if err != nil {
			t.Fatal(err)
		}
		again, err := tgt.Run(replayChooser(picks))
		if err != nil {
			t.Fatal(err)
		}
		if again.JournalHash != out.JournalHash {
			t.Fatalf("picks %v are not deterministic: %s vs %s", picks, out.JournalHash, again.JournalHash)
		}
		if out.FaultPlan == nil {
			return
		}
		faultOnly := true
		for _, d := range ch.trace {
			if d.Pick != 0 && !isFaultPoint(d.Point) {
				faultOnly = false
			}
		}
		if !faultOnly {
			return
		}
		spec, err := json.Marshal(out.FaultPlan)
		if err != nil {
			t.Fatalf("marshal chosen plan: %v", err)
		}
		plan, err := faults.Parse(spec)
		if err != nil {
			t.Fatalf("exported plan does not parse: %v\n%s", err, spec)
		}
		replay, err := tgt.RunPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		if replay.JournalHash != out.JournalHash {
			t.Fatalf("fault-only picks %v: plan replay hash %s != run hash %s (plan %s)",
				picks, replay.JournalHash, out.JournalHash, plan)
		}
	})
}
