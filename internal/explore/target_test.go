package explore

import (
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/sim"
)

// realTargets returns exploration targets over generated workloads for
// a representative protocol slice: the two ceiling variants exercise
// the full PCP auditor set, HP exercises the wound/restart path, and
// the distributed targets exercise the message-order and 2PC vote
// decision points that only exist there.
func realSingleTargets(t *testing.T) []Target {
	t.Helper()
	var ts []Target
	for _, pc := range []struct {
		proto string
		mk    func(*sim.Kernel) core.Manager
	}{
		{"C", func(k *sim.Kernel) core.Manager { return core.NewCeiling(k) }},
		{"P", func(k *sim.Kernel) core.Manager { return core.NewTwoPLPriority(k) }},
		{"HP", func(k *sim.Kernel) core.Manager { return core.NewTwoPLHP(k) }},
	} {
		tgt, err := SingleSiteTarget(SingleSiteOpts{Proto: pc.proto, NewManager: pc.mk})
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, tgt)
	}
	return ts
}

// TestCanonicalChooserMatchesNilChooserOnRealTarget: attaching a
// chooser that always picks canonically must reproduce the chooser-less
// run byte for byte on a full generated workload — the engine's
// baseline schedule is exactly the production schedule.
func TestCanonicalChooserMatchesNilChooserOnRealTarget(t *testing.T) {
	for _, tgt := range realSingleTargets(t) {
		bare, err := tgt.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		canon, err := tgt.Run(replayChooser(nil))
		if err != nil {
			t.Fatal(err)
		}
		if bare.JournalHash != canon.JournalHash {
			t.Errorf("%s: canonical chooser diverged from chooser-less run", tgt.Name)
		}
	}
}

// TestCleanTreeSingleSiteExploresClean: with the protocols intact,
// exploration over the tuned single-site workload finds no violations
// and actually reaches decision points (the run is not vacuous).
func TestCleanTreeSingleSiteExploresClean(t *testing.T) {
	for _, tgt := range realSingleTargets(t) {
		rep, err := Run(tgt, Options{Strategy: DFS, Schedules: 24, MaxDepth: 16, Branch: 2, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Counterexamples) != 0 {
			ce := rep.Counterexamples[0]
			t.Errorf("%s: clean tree produced a counterexample %v: %v", tgt.Name, ce.Schedule, ce.Violations)
		}
		if rep.Deepest == 0 {
			t.Errorf("%s: exploration vacuous, no decision points reached", tgt.Name)
		}
	}
}

// TestCleanTreeDistributedExploresClean: both distributed architectures
// explore clean, including the netsim delivery-order and 2PC vote-order
// decision points.
func TestCleanTreeDistributedExploresClean(t *testing.T) {
	for _, global := range []bool{false, true} {
		tgt, err := DistributedTarget(DistributedOpts{Global: global})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(tgt, Options{Strategy: Random, Schedules: 12, MaxDepth: 24, Branch: 2, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Counterexamples) != 0 {
			ce := rep.Counterexamples[0]
			t.Errorf("%s: clean tree produced a counterexample %v: %v", tgt.Name, ce.Schedule, ce.Violations)
		}
		if rep.Deepest == 0 {
			t.Errorf("%s: exploration vacuous, no decision points reached", tgt.Name)
		}
	}
}
