package explore

import (
	"fmt"
	"sync"

	"rtlock/internal/audit"
	"rtlock/internal/db"
	"rtlock/internal/dist"
	"rtlock/internal/faults"
	"rtlock/internal/place"
	"rtlock/internal/sim"
	"rtlock/internal/workload"
)

// spacePool recycles fault-space injectors across schedule executions,
// mirroring journalPool: Reset keeps the chosen-fault and site-state
// buffers. An injector's decisions are a pure function of the space and
// the chooser, so pooling never affects outcomes.
var spacePool = sync.Pool{New: func() any { return new(faults.SpaceInjector) }}

// FaultOpts configures a fault-space exploration target: a distributed
// cluster whose schedule tree includes failure decisions — site
// crashes, per-message drop/duplicate fates, and partition cuts — in
// addition to the scheduling decision points.
type FaultOpts struct {
	// Global selects the global-ceiling-manager architecture; false
	// selects local ceilings over full replication.
	Global bool
	// Placement, when set to a non-full policy, explores that
	// placement-aware execution model (sharded, quorum, or primary-only)
	// instead of the legacy approaches; Global must be false. Quorum
	// parameters take the cluster defaults.
	Placement place.Policy
	// Seed drives the workload stream (default 1).
	Seed int64
	// Sites, Count, DBSize, MeanSize, CommDelay, CPUPerObj, and
	// ReadOnlyFrac shape the cluster and workload, as in
	// DistributedOpts.
	Sites        int
	Count        int
	DBSize       int
	MeanSize     int
	CommDelay    sim.Duration
	CPUPerObj    sim.Duration
	ReadOnlyFrac float64
	// Space bounds the failure decisions surfaced to the chooser. Zero
	// takes a calibrated default sized to the exploration workload:
	// crash decisions every 25ms across the arrival window, 80ms
	// outages, fates on the first 12 inter-site messages, and two
	// partition-cut decisions.
	Space faults.Space
	// WALForceFault, when set, is passed through to the cluster: a
	// seeded weakening hook that drops chosen WAL vote forces (see
	// dist.Config.WALForceFault). Present in both exploration and plan
	// replay, so a found counterexample replays against the same
	// weakened system.
	WALForceFault func(site db.SiteID, txID int64) bool
	// Load overrides the generated workload with a hand-built one
	// (tests). The transactions are shared read-only across schedules.
	Load []*workload.Txn
}

// FaultTarget builds the exploration target for one distributed
// architecture with fault injection promoted into the decision tree.
// Runs execute under the full fault machinery (WAL-forced votes,
// presumed-abort retries, failover managers) and are audited with the
// recovery-correctness family; each Outcome carries the failure
// schedule the run committed to, and RunPlan replays such a plan —
// byte-identically for fault-only schedules — without a chooser.
func FaultTarget(o FaultOpts) (Target, error) {
	approach := dist.LocalCeiling
	if o.Global {
		approach = dist.GlobalCeiling
	}
	placed := o.Placement != 0 && o.Placement != place.Full
	if placed && o.Global {
		return Target{}, fmt.Errorf("explore: placement %s selects its own execution model; Global must be false", o.Placement)
	}
	arch := approach.String()
	if placed {
		approach = 0
		arch = o.Placement.String()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Sites <= 0 {
		o.Sites = 3
	}
	if o.Count <= 0 {
		o.Count = 10
	}
	if o.DBSize <= 0 {
		o.DBSize = defaultDBSize
	}
	if o.MeanSize <= 0 {
		o.MeanSize = 3
	}
	if o.CommDelay <= 0 {
		o.CommDelay = 10 * sim.Millisecond
	}
	if o.CPUPerObj <= 0 {
		o.CPUPerObj = defaultCPUPerObj
	}
	if len(o.Space.CrashPoints) == 0 && o.Space.MaxMsgFates == 0 && len(o.Space.CutPoints) == 0 {
		// Calibrated to the default workload: ~10 arrivals over ~300ms,
		// so crash decisions cover the arrival window, an outage spans
		// several 2PC rounds, and cut decisions land mid-traffic.
		for at := int64(25 * sim.Millisecond); at <= int64(150*sim.Millisecond); at += int64(25 * sim.Millisecond) {
			o.Space.CrashPoints = append(o.Space.CrashPoints, at)
		}
		o.Space.DownFor = int64(80 * sim.Millisecond)
		o.Space.MaxMsgFates = 12
		o.Space.AllowDup = true
		o.Space.CutPoints = []int64{int64(60 * sim.Millisecond), int64(130 * sim.Millisecond)}
		o.Space.CutFor = int64(60 * sim.Millisecond)
	}
	cfg := dist.Config{
		Approach:      approach,
		Placement:     o.Placement,
		Sites:         o.Sites,
		Objects:       o.DBSize,
		CommDelay:     o.CommDelay,
		CPUPerObj:     o.CPUPerObj,
		WALForceFault: o.WALForceFault,
	}
	load := o.Load
	if load == nil {
		layout, err := dist.NewCluster(cfg)
		if err != nil {
			return Target{}, err
		}
		load, err = workload.Generate(workload.Params{
			Seed:             o.Seed,
			Catalog:          layout.Catalog,
			Count:            o.Count,
			MeanInterarrival: 30 * sim.Millisecond,
			MeanSize:         o.MeanSize,
			ReadOnlyFrac:     o.ReadOnlyFrac,
			PerObjCost:       o.CPUPerObj,
			SlackMin:         4,
			SlackMax:         8,
			LocalWriteSets:   !placed,
		})
		if err != nil {
			return Target{}, err
		}
	}
	key := fmt.Sprintf("explore/fault/%s/sites=%d/db=%d/count=%d/size=%d/ro=%g",
		arch, o.Sites, o.DBSize, len(load), o.MeanSize, o.ReadOnlyFrac)
	// run executes one schedule: under the chooser-driven fault space
	// (plan == nil) or under a fixed replayed plan (ch == nil). Both
	// paths share the journal key and seed, which is what makes a
	// fault-only counterexample's replay byte-identical.
	run := func(ch sim.Chooser, plan *faults.Plan) (*Outcome, error) {
		jrn := getJournal(o.Seed, key)
		defer putJournal(jrn)
		c := cfg
		c.Journal = jrn
		cluster, err := dist.NewCluster(c)
		if err != nil {
			return nil, err
		}
		if plan != nil {
			if err := cluster.AttachFaults(plan, o.Seed); err != nil {
				return nil, err
			}
		} else {
			si := spacePool.Get().(*faults.SpaceInjector)
			si.Reset(o.Space)
			defer spacePool.Put(si)
			cluster.AttachFaultSpace(si)
			cluster.K.SetChooser(ch)
		}
		cluster.Load(load)
		cluster.Run()
		auds := audit.ForFaults(approach.String())
		if placed {
			auds = audit.ForPlacementFaults(o.Placement.String())
		}
		out := &Outcome{
			JournalHash: jrn.HashString(),
			Violations:  audit.Run(jrn, auds...),
			FaultPlan:   plan,
		}
		if plan == nil {
			out.FaultPlan = cluster.ChosenFaultPlan()
		}
		return out, nil
	}
	return Target{
		Name:    "fault/" + arch,
		Run:     func(ch sim.Chooser) (*Outcome, error) { return run(ch, nil) },
		RunPlan: func(plan *faults.Plan) (*Outcome, error) { return run(nil, plan) },
	}, nil
}
