// Package check verifies conflict serializability of committed execution
// histories. Every protocol in this repository follows strict two-phase
// locking, so committed histories must always be conflict serializable;
// the tests use this checker as an end-to-end correctness oracle.
package check

import (
	"sort"

	"rtlock/internal/core"
	"rtlock/internal/sim"
)

// Op is one data access in the history.
type Op struct {
	Tx   int64
	Obj  core.ObjectID
	Mode core.Mode
	At   sim.Time
	Seq  int64
}

// History accumulates operations and commit decisions. It is not safe for
// concurrent use; in the simulation all appends happen under the kernel's
// single-runner discipline.
type History struct {
	ops       []Op
	committed map[int64]bool
	seq       int64
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{committed: make(map[int64]bool)}
}

// Record appends one access.
func (h *History) Record(tx int64, obj core.ObjectID, mode core.Mode, at sim.Time) {
	h.seq++
	h.ops = append(h.ops, Op{Tx: tx, Obj: obj, Mode: mode, At: at, Seq: h.seq})
}

// Commit marks a transaction as committed; only committed transactions
// participate in the serializability check (aborted ones are undone).
func (h *History) Commit(tx int64) { h.committed[tx] = true }

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// Committed returns the number of committed transactions.
func (h *History) Committed() int { return len(h.committed) }

// ConflictSerializable builds the precedence graph over committed
// transactions — an edge Ti→Tj for each pair of conflicting operations
// where Ti's came first — and reports whether it is acyclic.
func (h *History) ConflictSerializable() bool {
	ops := make([]Op, 0, len(h.ops))
	for _, op := range h.ops {
		if h.committed[op.Tx] {
			ops = append(ops, op)
		}
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].At != ops[j].At {
			return ops[i].At < ops[j].At
		}
		return ops[i].Seq < ops[j].Seq
	})
	edges := make(map[int64]map[int64]struct{})
	byObj := make(map[core.ObjectID][]Op)
	for _, op := range ops {
		byObj[op.Obj] = append(byObj[op.Obj], op)
	}
	for _, seq := range byObj {
		for i := 0; i < len(seq); i++ {
			for j := i + 1; j < len(seq); j++ {
				a, b := seq[i], seq[j]
				if a.Tx == b.Tx {
					continue
				}
				if a.Mode == core.Read && b.Mode == core.Read {
					continue
				}
				m, ok := edges[a.Tx]
				if !ok {
					m = make(map[int64]struct{})
					edges[a.Tx] = m
				}
				m[b.Tx] = struct{}{}
			}
		}
	}
	return acyclic(edges)
}

func acyclic(edges map[int64]map[int64]struct{}) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int64]int)
	var visit func(n int64) bool
	visit = func(n int64) bool {
		color[n] = gray
		for m := range edges[n] {
			switch color[m] {
			case gray:
				return false
			case white:
				if !visit(m) {
					return false
				}
			}
		}
		color[n] = black
		return true
	}
	nodes := make([]int64, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		if color[n] == white && !visit(n) {
			return false
		}
	}
	return true
}
