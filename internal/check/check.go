// Package check verifies conflict serializability of committed execution
// histories. Every protocol in this repository follows strict two-phase
// locking, so committed histories must always be conflict serializable;
// the tests use this checker as an end-to-end correctness oracle.
package check

import (
	"sort"

	"rtlock/internal/core"
	"rtlock/internal/sim"
)

// Op is one data access in the history.
type Op struct {
	Tx   int64
	Obj  core.ObjectID
	Mode core.Mode
	At   sim.Time
	Seq  int64
}

// History accumulates operations and commit decisions. It is not safe for
// concurrent use; in the simulation all appends happen under the kernel's
// single-runner discipline.
type History struct {
	ops       []Op
	committed map[int64]bool
	seq       int64

	// scratch, edges, pendingReads, and color are reused by
	// ConflictSerializable so a pooled history checks without
	// steady-state allocation.
	scratch      []Op
	edges        map[int64][]int64
	pendingReads []int64
	color        map[int64]int
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{committed: make(map[int64]bool)}
}

// Reset clears the history for reuse, keeping the operation buffer and
// scratch storage.
func (h *History) Reset() {
	h.ops = h.ops[:0]
	clear(h.committed)
	h.seq = 0
}

// Record appends one access.
func (h *History) Record(tx int64, obj core.ObjectID, mode core.Mode, at sim.Time) {
	h.seq++
	h.ops = append(h.ops, Op{Tx: tx, Obj: obj, Mode: mode, At: at, Seq: h.seq})
}

// Commit marks a transaction as committed; only committed transactions
// participate in the serializability check (aborted ones are undone).
func (h *History) Commit(tx int64) { h.committed[tx] = true }

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// Committed returns the number of committed transactions.
func (h *History) Committed() int { return len(h.committed) }

// ConflictSerializable builds the precedence graph over committed
// transactions — an edge Ti→Tj for each pair of conflicting operations
// where Ti's came first — and reports whether it is acyclic.
func (h *History) ConflictSerializable() bool {
	ops := h.scratch[:0]
	for _, op := range h.ops {
		if h.committed[op.Tx] {
			ops = append(ops, op)
		}
	}
	h.scratch = ops
	// One sort keyed (Obj, At, Seq) groups each object's accesses
	// contiguously in time order, replacing the per-object map of
	// slices the pairwise pass used to build.
	sort.Sort(opsByObjTime(ops))
	// Emit the transitive reduction of each object's conflict order
	// instead of all conflicting pairs: consecutive writes chain, each
	// write points at the reads that follow it (until the next write),
	// and each read points at the next write. Every all-pairs conflict
	// edge a→b is then implied by a path — writes between a and b chain
	// through, and same-transaction hops are the same graph node — so
	// the graph is acyclic exactly when the full precedence graph is,
	// at O(ops) edges per object instead of O(ops²).
	if h.edges == nil {
		h.edges = make(map[int64][]int64)
	} else {
		clear(h.edges)
	}
	edges := h.edges
	addEdge := func(from, to int64) {
		if from == to {
			return
		}
		es := edges[from]
		for _, e := range es {
			if e == to {
				return
			}
		}
		edges[from] = append(es, to)
	}
	pendingReads := h.pendingReads[:0]
	for lo := 0; lo < len(ops); {
		hi := lo + 1
		for hi < len(ops) && ops[hi].Obj == ops[lo].Obj {
			hi++
		}
		prevWrite := int64(-1)
		hasWrite := false
		pendingReads = pendingReads[:0]
		for i := lo; i < hi; i++ {
			op := ops[i]
			if op.Mode == core.Read {
				if hasWrite {
					addEdge(prevWrite, op.Tx)
				}
				pendingReads = append(pendingReads, op.Tx)
				continue
			}
			if hasWrite {
				addEdge(prevWrite, op.Tx)
			}
			for _, r := range pendingReads {
				addEdge(r, op.Tx)
			}
			pendingReads = pendingReads[:0]
			prevWrite, hasWrite = op.Tx, true
		}
		lo = hi
	}
	h.pendingReads = pendingReads
	if h.color == nil {
		h.color = make(map[int64]int, len(edges))
	} else {
		clear(h.color)
	}
	return acyclic(edges, h.color)
}

// opsByObjTime sorts operations by object, then time, then sequence.
type opsByObjTime []Op

func (s opsByObjTime) Len() int      { return len(s) }
func (s opsByObjTime) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s opsByObjTime) Less(i, j int) bool {
	if s[i].Obj != s[j].Obj {
		return s[i].Obj < s[j].Obj
	}
	if s[i].At != s[j].At {
		return s[i].At < s[j].At
	}
	return s[i].Seq < s[j].Seq
}

func acyclic(edges map[int64][]int64, color map[int64]int) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	var visit func(n int64) bool
	visit = func(n int64) bool {
		color[n] = gray
		for _, m := range edges[n] {
			switch color[m] {
			case gray:
				return false
			case white:
				if !visit(m) {
					return false
				}
			}
		}
		color[n] = black
		return true
	}
	// Acyclicity is independent of visit order, so iterating the
	// adjacency map directly is deterministic in outcome.
	//rtlint:allow maprange boolean acyclicity result is visit-order independent
	for n := range edges {
		if color[n] == white && !visit(n) {
			return false
		}
	}
	return true
}
