package check

// Fuzzing for the serializability checker: arbitrary operation
// sequences must never panic the checker, repeated checks must agree,
// and for small histories the precedence-graph verdict must match a
// brute-force search over all serial orders.

import (
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/sim"
)

// decodeOps turns fuzz bytes into a small operation sequence: each
// 3-byte group is (tx, obj, mode), recorded at strictly increasing
// times so the recorded order is the time order.
func decodeOps(data []byte) []Op {
	var ops []Op
	for i := 0; i+2 < len(data) && len(ops) < 64; i += 3 {
		mode := core.Read
		if data[i+2]&1 == 1 {
			mode = core.Write
		}
		ops = append(ops, Op{
			Tx:   int64(data[i] % 5),
			Obj:  core.ObjectID(data[i+1] % 8),
			Mode: mode,
			At:   sim.Time(i),
		})
	}
	return ops
}

// bruteSerializable is an independent oracle: it tries every serial
// order of the committed transactions and reports whether one is
// consistent with all conflict pairs in the recorded order.
func bruteSerializable(ops []Op, committed map[int64]bool) bool {
	var txs []int64
	seen := make(map[int64]bool)
	for _, op := range ops {
		if committed[op.Tx] && !seen[op.Tx] {
			seen[op.Tx] = true
			txs = append(txs, op.Tx)
		}
	}
	ok := false
	permute(txs, 0, func(order []int64) {
		if ok {
			return
		}
		pos := make(map[int64]int, len(order))
		for i, tx := range order {
			pos[tx] = i
		}
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				a, b := ops[i], ops[j]
				if a.Tx == b.Tx || a.Obj != b.Obj ||
					!committed[a.Tx] || !committed[b.Tx] ||
					(a.Mode == core.Read && b.Mode == core.Read) {
					continue
				}
				if pos[a.Tx] > pos[b.Tx] {
					return
				}
			}
		}
		ok = true
	})
	return ok || len(txs) == 0
}

func permute(xs []int64, i int, visit func([]int64)) {
	if i == len(xs) {
		visit(xs)
		return
	}
	for j := i; j < len(xs); j++ {
		xs[i], xs[j] = xs[j], xs[i]
		permute(xs, i+1, visit)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

func FuzzHistory(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 1, 2, 1, 1})                   // w1(1) w2(1): serial
	f.Add([]byte{1, 1, 1, 2, 1, 1, 1, 2, 0, 2, 2, 1}) // cross conflicts
	f.Add([]byte{0, 0, 1, 1, 0, 1, 0, 1, 1, 1, 1, 1}) // classic cycle shape
	f.Add([]byte{3, 7, 0, 4, 7, 0, 3, 7, 0})          // read-only: no conflicts
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeOps(data)
		h := NewHistory()
		committed := make(map[int64]bool)
		for _, op := range ops {
			h.Record(op.Tx, op.Obj, op.Mode, op.At)
			committed[op.Tx] = true
		}
		for tx := range committed {
			h.Commit(tx)
		}
		got := h.ConflictSerializable()
		if again := h.ConflictSerializable(); again != got {
			t.Fatalf("checker not idempotent: %t then %t", got, again)
		}
		if want := bruteSerializable(ops, committed); got != want {
			t.Fatalf("precedence graph says %t, brute force says %t for %+v", got, want, ops)
		}
	})
}
