package check

import (
	"testing"

	"rtlock/internal/core"
)

func TestSerializableSimple(t *testing.T) {
	h := NewHistory()
	// t1 then t2, fully ordered.
	h.Record(1, 10, core.Write, 1)
	h.Record(1, 11, core.Write, 2)
	h.Record(2, 10, core.Write, 5)
	h.Record(2, 11, core.Write, 6)
	h.Commit(1)
	h.Commit(2)
	if !h.ConflictSerializable() {
		t.Fatal("sequential history flagged non-serializable")
	}
}

func TestNonSerializableCycle(t *testing.T) {
	h := NewHistory()
	// w1(x) w2(x) w2(y) w1(y): t1→t2 on x, t2→t1 on y.
	h.Record(1, 1, core.Write, 1)
	h.Record(2, 1, core.Write, 2)
	h.Record(2, 2, core.Write, 3)
	h.Record(1, 2, core.Write, 4)
	h.Commit(1)
	h.Commit(2)
	if h.ConflictSerializable() {
		t.Fatal("cyclic history passed")
	}
}

func TestReadsDoNotConflict(t *testing.T) {
	h := NewHistory()
	h.Record(1, 1, core.Read, 1)
	h.Record(2, 1, core.Read, 2)
	h.Record(2, 2, core.Read, 3)
	h.Record(1, 2, core.Read, 4)
	h.Commit(1)
	h.Commit(2)
	if !h.ConflictSerializable() {
		t.Fatal("read-only interleaving flagged")
	}
}

func TestReadWriteConflictsCount(t *testing.T) {
	h := NewHistory()
	// r1(x) w2(x) r2(y)... w1(y): t1→t2 on x (r-w), t2→t1 on y (w-r? no:
	// r2(y) then w1(y) gives t2→t1). Cycle.
	h.Record(1, 1, core.Read, 1)
	h.Record(2, 1, core.Write, 2)
	h.Record(2, 2, core.Read, 3)
	h.Record(1, 2, core.Write, 4)
	h.Commit(1)
	h.Commit(2)
	if h.ConflictSerializable() {
		t.Fatal("read-write cycle passed")
	}
}

func TestAbortedTransactionsExcluded(t *testing.T) {
	h := NewHistory()
	// Same cycle as above, but t2 never commits.
	h.Record(1, 1, core.Write, 1)
	h.Record(2, 1, core.Write, 2)
	h.Record(2, 2, core.Write, 3)
	h.Record(1, 2, core.Write, 4)
	h.Commit(1)
	if !h.ConflictSerializable() {
		t.Fatal("aborted transaction's operations affected the check")
	}
	if h.Committed() != 1 || h.Len() != 4 {
		t.Fatalf("committed=%d len=%d", h.Committed(), h.Len())
	}
}

func TestTieBreakBySeq(t *testing.T) {
	h := NewHistory()
	// Both ops at the same instant: recording order decides.
	h.Record(1, 1, core.Write, 5)
	h.Record(2, 1, core.Write, 5)
	h.Record(1, 2, core.Write, 6)
	h.Record(2, 2, core.Write, 7)
	h.Commit(1)
	h.Commit(2)
	if !h.ConflictSerializable() {
		t.Fatal("t1 before t2 on both objects; serializable")
	}
}
