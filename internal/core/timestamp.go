package core

import (
	"rtlock/internal/sim"
)

// Timestamp implements basic timestamp ordering, the third concurrency
// control the paper's prototyping environment offers ("locking,
// timestamp ordering, and priority-based"). Each transaction attempt
// receives a monotonically increasing timestamp at Register; accesses
// that arrive too late — a read of an object already written by a newer
// transaction, or a write of an object already read or written by a
// newer one — abort the attempt with ErrRestart. There is no blocking
// and no deadlock; all contention cost appears as wasted, redone work.
//
// Simplifications relative to textbook TO, both conservative: the
// per-object read/write timestamp maxima are not rolled back when an
// attempt aborts, and writes are validated at access time rather than
// installed through a recoverable buffer. Both can only cause extra
// restarts, never a serializability violation among committed attempts.
type Timestamp struct {
	k    *sim.Kernel
	pr   lockProbes
	next int64
	ts   map[*TxState]int64
	rts  map[ObjectID]int64
	wts  map[ObjectID]int64

	// Restarts counts access-time ordering violations issued.
	Restarts int
}

var _ Manager = (*Timestamp)(nil)

// NewTimestamp returns the timestamp-ordering protocol.
func NewTimestamp(k *sim.Kernel) *Timestamp {
	return &Timestamp{
		k:   k,
		pr:  newLockProbes(k),
		ts:  make(map[*TxState]int64),
		rts: make(map[ObjectID]int64),
		wts: make(map[ObjectID]int64),
	}
}

// Name implements Manager.
func (m *Timestamp) Name() string { return "TO" }

// Register implements Manager: the attempt receives its timestamp.
// Restarted attempts re-register and therefore move forward in the
// order, the classic restart-with-new-timestamp rule.
func (m *Timestamp) Register(tx *TxState) {
	m.next++
	m.ts[tx] = m.next
}

// Unregister implements Manager.
func (m *Timestamp) Unregister(tx *TxState) { delete(m.ts, tx) }

// Acquire implements Manager. It never blocks: it either admits the
// access (recording it in the timestamp table) or rejects the attempt
// with ErrRestart.
func (m *Timestamp) Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error {
	m.pr.emitRequest(m.k, 0, tx, obj, mode)
	t, ok := m.ts[tx]
	if !ok {
		// Defensive: treat an unregistered attempt as stale.
		m.Restarts++
		return ErrRestart
	}
	switch mode {
	case Read:
		if t < m.wts[obj] {
			m.Restarts++
			return ErrRestart
		}
		if t > m.rts[obj] {
			m.rts[obj] = t
		}
	case Write:
		if t < m.rts[obj] || t < m.wts[obj] {
			m.Restarts++
			return ErrRestart
		}
		m.wts[obj] = t
	}
	// Track the access so ReleaseAll and monitors see a consistent
	// picture (TO holds no locks; held doubles as the access set).
	tx.setHeld(obj, mode)
	m.pr.emitGrant(m.k, 0, tx, obj, mode)
	return nil
}

// ReleaseAll implements Manager. TO holds no locks; only the
// transaction-local access record is cleared (in sorted order, so the
// journal's release records stay deterministic).
func (m *Timestamp) ReleaseAll(tx *TxState) {
	// tx.held is sorted by object id, keeping the journal's release
	// records deterministic.
	for i := range tx.held {
		m.pr.emitRelease(m.k, 0, tx, tx.held[i].obj)
	}
	tx.clearHeld()
}

// ObjectTimestamps exposes the read/write timestamps of an object for
// tests.
func (m *Timestamp) ObjectTimestamps(obj ObjectID) (rts, wts int64) {
	return m.rts[obj], m.wts[obj]
}
