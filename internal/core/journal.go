package core

import (
	"rtlock/internal/journal"

	"rtlock/internal/sim"
)

// Journal emission helpers shared by the lock managers, bundled with
// the cached metric probe handles (probes.go). All of them are no-ops
// when the kernel has no journal attached (Append is nil-safe), so the
// hot paths pay only a nil check. The site parameter tags records in
// distributed runs where several managers share one kernel;
// single-site managers pass 0.

func (p *lockProbes) emitRequest(k *sim.Kernel, site int32, tx *TxState, obj ObjectID, mode Mode) {
	p.requests.Inc()
	k.Journal().Append(int64(k.Now()), journal.KLockRequest, site, tx.ID, int32(obj), int64(mode), 0, "")
}

func (p *lockProbes) emitGrant(k *sim.Kernel, site int32, tx *TxState, obj ObjectID, mode Mode) {
	p.grants.Inc()
	k.Journal().Append(int64(k.Now()), journal.KLockGrant, site, tx.ID, int32(obj), int64(mode), 0, "")
}

// emitBlock records that tx blocked on obj, one record per blamed
// holder (A = blamer id), or a single record with A = -1 when no
// specific transaction is identifiable. B carries 1 for a ceiling block
// and 0 for a direct conflict. The blamed slice must already be in
// deterministic order (the managers sort it by transaction id).
func (p *lockProbes) emitBlock(k *sim.Kernel, site int32, tx *TxState, obj ObjectID, blamed []*TxState, ceiling bool) {
	flag := int64(0)
	if ceiling {
		p.blocksCeiling.Inc()
		flag = 1
	} else {
		p.blocksConflict.Inc()
	}
	if len(blamed) == 0 {
		k.Journal().Append(int64(k.Now()), journal.KLockBlock, site, tx.ID, int32(obj), -1, flag, "")
		return
	}
	for _, h := range blamed {
		k.Journal().Append(int64(k.Now()), journal.KLockBlock, site, tx.ID, int32(obj), h.ID, flag, "")
	}
}

// emitBlame records that a parked waiter's blame set was recomputed
// (re-blame after a partial release). The streaming auditors replace
// the waiter's outgoing waits-for edges with the new set. B carries the
// same ceiling flag as emitBlock: ceiling-blocked waiters resume when
// the system ceiling drops, so their blame is attribution rather than a
// hard wait on the blamed holder.
func (p *lockProbes) emitBlame(k *sim.Kernel, site int32, tx *TxState, obj ObjectID, blamed []*TxState, ceiling bool) {
	flag := int64(0)
	if ceiling {
		flag = 1
	}
	if len(blamed) == 0 {
		k.Journal().Append(int64(k.Now()), journal.KBlame, site, tx.ID, int32(obj), -1, flag, "")
		return
	}
	for _, h := range blamed {
		k.Journal().Append(int64(k.Now()), journal.KBlame, site, tx.ID, int32(obj), h.ID, flag, "")
	}
}

func (p *lockProbes) emitRelease(k *sim.Kernel, site int32, tx *TxState, obj ObjectID) {
	p.releases.Inc()
	k.Journal().Append(int64(k.Now()), journal.KLockRelease, site, tx.ID, int32(obj), 0, 0, "")
}

func (p *lockProbes) emitWound(k *sim.Kernel, site int32, victim *TxState, aggressor *TxState) {
	p.wounds.Inc()
	k.Journal().Append(int64(k.Now()), journal.KWound, site, victim.ID, 0, aggressor.ID, 0, "")
}
