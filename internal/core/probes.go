package core

import (
	"rtlock/internal/metrics"
	"rtlock/internal/sim"
)

// Metrics probes for the lock managers. They piggyback on the journal
// emission choke points (journal.go) so every protocol reports the same
// counters without per-manager wiring; like the journal, all of them
// are no-ops when the kernel has no registry attached.

// Histogram/counter names shared by the probes and their tests.
const (
	metricLockWaitTicks = "lock_wait_ticks"
)

func lockCounter(k *sim.Kernel, name, help string, labels ...metrics.Label) metrics.Counter {
	return k.Metrics().Counter(name, help, labels...)
}

// blockKindLabel distinguishes ceiling blocks from direct conflicts.
func blockKindLabel(ceiling bool) metrics.Label {
	if ceiling {
		return metrics.L("kind", "ceiling")
	}
	return metrics.L("kind", "conflict")
}

// observeUnblocked closes tx's blocked interval and feeds its length to
// the lock-wait histogram. Managers call it wherever a parked waiter
// resumes (grant, wound, restart, cancellation).
func observeUnblocked(k *sim.Kernel, tx *TxState) {
	if d := tx.noteUnblocked(k.Now()); d > 0 {
		k.Metrics().Histogram(metricLockWaitTicks,
			"Blocked-interval lengths of lock waiters, in ticks.", nil).Observe(int64(d))
	}
}
