package core

import (
	"rtlock/internal/metrics"
	"rtlock/internal/sim"
)

// Metrics probes for the lock managers. Every manager caches one
// lockProbes at construction, so the emission choke points (journal.go)
// update pre-resolved series handles instead of re-looking the series
// up in the registry per event; like the journal, all handles are
// no-ops when the kernel has no registry attached.

// Histogram/counter names shared by the probes and their tests.
const (
	metricLockWaitTicks = "lock_wait_ticks"
)

// lockProbes is the per-manager bundle of cached metric handles.
type lockProbes struct {
	requests       metrics.Counter
	grants         metrics.Counter
	blocksCeiling  metrics.Counter
	blocksConflict metrics.Counter
	releases       metrics.Counter
	wounds         metrics.Counter
	waitHist       metrics.Histogram
}

// newLockProbes resolves the shared lock-manager series once. Managers
// must be constructed after the kernel's registry is attached (or the
// handles stay no-ops, matching a metrics-less run).
func newLockProbes(k *sim.Kernel) lockProbes {
	m := k.Metrics()
	return lockProbes{
		requests: m.Counter("lock_requests_total", "Lock acquisitions requested."),
		grants:   m.Counter("lock_grants_total", "Lock acquisitions granted."),
		blocksCeiling: m.Counter("lock_blocks_total", "Lock requests that blocked, by block kind.",
			metrics.L("kind", "ceiling")),
		blocksConflict: m.Counter("lock_blocks_total", "Lock requests that blocked, by block kind.",
			metrics.L("kind", "conflict")),
		releases: m.Counter("lock_releases_total", "Lock releases."),
		wounds:   m.Counter("lock_wounds_total", "Waiters or holders wounded by a higher-priority transaction."),
		waitHist: m.Histogram(metricLockWaitTicks,
			"Blocked-interval lengths of lock waiters, in ticks.", nil),
	}
}

// observeUnblocked closes tx's blocked interval and feeds its length to
// the lock-wait histogram. Managers call it wherever a parked waiter
// resumes (grant, wound, restart, cancellation).
func (p *lockProbes) observeUnblocked(k *sim.Kernel, tx *TxState) {
	if d := tx.noteUnblocked(k.Now()); d > 0 {
		p.waitHist.Observe(int64(d))
	}
}
