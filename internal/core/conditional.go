package core

import (
	"rtlock/internal/sim"
)

// TwoPLCond is two-phase locking with the conditional-restart policy of
// Abbott and Garcia-Molina ([Abb88] in the paper): a higher-priority
// requester aborts a conflicting lower-priority holder only when it
// cannot afford to wait — when its slack (time to its deadline) is
// smaller than the holder's execution-time estimate. Otherwise it waits
// like ordinary priority 2PL, avoiding the wasted work of an abort the
// requester didn't need.
type TwoPLCond struct {
	k     *sim.Kernel
	pr    lockProbes
	table lockTable
	seq   uint64

	// Wounds counts holder aborts; Spared counts conflicts where the
	// requester chose to wait instead.
	Wounds int
	Spared int
}

var _ Manager = (*TwoPLCond)(nil)

// NewTwoPLCond returns the conditional-restart scheme.
func NewTwoPLCond(k *sim.Kernel) *TwoPLCond {
	return &TwoPLCond{k: k, pr: newLockProbes(k)}
}

// Name implements Manager.
func (m *TwoPLCond) Name() string { return "2PL-CR" }

// Register implements Manager.
func (m *TwoPLCond) Register(tx *TxState) {}

// Unregister implements Manager.
func (m *TwoPLCond) Unregister(tx *TxState) {}

// Acquire implements Manager.
//
//rtlint:allocfree
func (m *TwoPLCond) Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error {
	m.pr.emitRequest(m.k, 0, tx, obj, mode)
	if held, ok := tx.Holds(obj); ok && (held == Write || mode == Read) {
		m.pr.emitGrant(m.k, 0, tx, obj, mode)
		return nil
	}
	e := m.table.get(obj) //rtlint:allow allocfree inlined pool-miss &lockEntry literal from get's growth path
	conflicts := conflictingHolders(e, tx, mode)
	if len(conflicts) == 0 && m.admissible(e, tx) {
		m.grant(e, tx, obj, mode)
		return nil
	}
	// Conditional wound: only lower-priority holders, and only when
	// the requester's slack cannot absorb the holder's estimated
	// execution time.
	slack := sim.Duration(tx.Base.Deadline - int64(m.k.Now()))
	for _, h := range conflicts {
		if !h.Eff().Lower(tx.Eff()) {
			continue
		}
		if slack > h.Estimate {
			m.Spared++
			continue
		}
		m.Wounds++
		m.pr.emitWound(m.k, 0, h, tx)
		h.RequestWound(ErrRestart)
	}
	m.seq++
	w := m.table.getWaiter() //rtlint:allow allocfree inlined pool-miss &lockWaiter literal from getWaiter's growth path
	w.owner = m
	w.tx, w.obj, w.mode, w.seq, w.e = tx, obj, mode, m.seq, e
	e.queue = append(e.queue, w)
	m.pr.emitBlock(m.k, 0, tx, obj, conflicts, false)
	tx.noteBlocked(m.k.Now(), conflicts) //rtlint:allow allocfree inlined lazy BlockedBy map, allocated once per TxState on its first block
	w.tok.SetCancel(lockWaiterCancel, w)
	err := p.Park(&w.tok)
	m.pr.observeUnblocked(m.k, tx)
	m.table.putWaiter(w)
	return err
}

// ReleaseAll implements Manager.
func (m *TwoPLCond) ReleaseAll(tx *TxState) {
	if len(tx.held) == 0 {
		return
	}
	// tx.held is sorted by object id, keeping release order
	// deterministic.
	for i := range tx.held {
		obj := tx.held[i].obj
		m.pr.emitRelease(m.k, 0, tx, obj)
		if e := m.table.at(obj); e != nil {
			e.removeHolder(tx)
		}
	}
	for i := range tx.held {
		m.processQueue(tx.held[i].obj)
	}
	tx.clearHeld()
}

// Waiting reports parked lock waiters, for tests.
func (m *TwoPLCond) Waiting() int {
	n := 0
	for _, e := range m.table.entries {
		if e != nil {
			n += len(e.queue)
		}
	}
	return n
}

func (m *TwoPLCond) admissible(e *lockEntry, tx *TxState) bool {
	for _, w := range e.queue {
		if w.tx.Eff().Higher(tx.Eff()) {
			return false
		}
	}
	return true
}

func (m *TwoPLCond) grant(e *lockEntry, tx *TxState, obj ObjectID, mode Mode) {
	e.setHolder(tx, mode)
	tx.setHeld(obj, mode)
	m.pr.emitGrant(m.k, 0, tx, obj, mode)
}

func (m *TwoPLCond) processQueue(obj ObjectID) {
	e := m.table.at(obj)
	if e == nil {
		return
	}
	sortWaitersByPrio(e.queue)
	granted := 0
	for _, w := range e.queue {
		if holdersConflict(e, w.tx, w.mode) {
			break
		}
		m.grant(e, w.tx, obj, w.mode)
		w.tok.Wake(nil)
		granted++
	}
	e.queue = e.queue[granted:]
	if len(e.holders) == 0 && len(e.queue) == 0 {
		m.table.drop(e)
	}
}

func (m *TwoPLCond) dropWaiter(e *lockEntry, w *lockWaiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	m.processQueue(w.obj)
}
