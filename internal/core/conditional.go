package core

import (
	"sort"

	"rtlock/internal/sim"
)

// TwoPLCond is two-phase locking with the conditional-restart policy of
// Abbott and Garcia-Molina ([Abb88] in the paper): a higher-priority
// requester aborts a conflicting lower-priority holder only when it
// cannot afford to wait — when its slack (time to its deadline) is
// smaller than the holder's execution-time estimate. Otherwise it waits
// like ordinary priority 2PL, avoiding the wasted work of an abort the
// requester didn't need.
type TwoPLCond struct {
	k       *sim.Kernel
	entries map[ObjectID]*lockEntry
	seq     uint64

	// Wounds counts holder aborts; Spared counts conflicts where the
	// requester chose to wait instead.
	Wounds int
	Spared int
}

var _ Manager = (*TwoPLCond)(nil)

// NewTwoPLCond returns the conditional-restart scheme.
func NewTwoPLCond(k *sim.Kernel) *TwoPLCond {
	return &TwoPLCond{k: k, entries: make(map[ObjectID]*lockEntry)}
}

// Name implements Manager.
func (m *TwoPLCond) Name() string { return "2PL-CR" }

// Register implements Manager.
func (m *TwoPLCond) Register(tx *TxState) {}

// Unregister implements Manager.
func (m *TwoPLCond) Unregister(tx *TxState) {}

// Acquire implements Manager.
func (m *TwoPLCond) Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error {
	emitRequest(m.k, 0, tx, obj, mode)
	if held, ok := tx.held[obj]; ok && (held == Write || mode == Read) {
		emitGrant(m.k, 0, tx, obj, mode)
		return nil
	}
	e := m.entry(obj)
	conflicts := conflictingHolders(e, tx, mode)
	if len(conflicts) == 0 && m.admissible(e, tx) {
		m.grant(e, tx, obj, mode)
		return nil
	}
	// Conditional wound: only lower-priority holders, and only when
	// the requester's slack cannot absorb the holder's estimated
	// execution time.
	slack := sim.Duration(tx.Base.Deadline - int64(m.k.Now()))
	for _, h := range conflicts {
		if !h.Eff().Lower(tx.Eff()) {
			continue
		}
		if slack > h.Estimate {
			m.Spared++
			continue
		}
		m.Wounds++
		emitWound(m.k, 0, h, tx)
		h.RequestWound(ErrRestart)
	}
	m.seq++
	w := &lockWaiter{tx: tx, obj: obj, mode: mode, tok: &sim.Token{}, seq: m.seq}
	e.queue = append(e.queue, w)
	emitBlock(m.k, 0, tx, obj, conflicts, false)
	tx.noteBlocked(m.k.Now(), conflicts)
	w.tok.OnCancel = func() { m.dropWaiter(e, w) }
	err := p.Park(w.tok)
	observeUnblocked(m.k, tx)
	return err
}

// ReleaseAll implements Manager.
func (m *TwoPLCond) ReleaseAll(tx *TxState) {
	if len(tx.held) == 0 {
		return
	}
	affected := make([]ObjectID, 0, len(tx.held))
	for obj := range tx.held {
		affected = append(affected, obj)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	for _, obj := range affected {
		delete(tx.held, obj)
		emitRelease(m.k, 0, tx, obj)
		if e := m.entries[obj]; e != nil {
			delete(e.holders, tx)
		}
	}
	for _, obj := range affected {
		m.processQueue(obj)
	}
}

// Waiting reports parked lock waiters, for tests.
func (m *TwoPLCond) Waiting() int {
	n := 0
	for _, e := range m.entries {
		n += len(e.queue)
	}
	return n
}

func (m *TwoPLCond) entry(obj ObjectID) *lockEntry {
	e, ok := m.entries[obj]
	if !ok {
		e = &lockEntry{holders: make(map[*TxState]Mode)}
		m.entries[obj] = e
	}
	return e
}

func (m *TwoPLCond) admissible(e *lockEntry, tx *TxState) bool {
	for _, w := range e.queue {
		if w.tx.Eff().Higher(tx.Eff()) {
			return false
		}
	}
	return true
}

func (m *TwoPLCond) grant(e *lockEntry, tx *TxState, obj ObjectID, mode Mode) {
	if cur, ok := e.holders[tx]; !ok || mode == Write && cur == Read {
		e.holders[tx] = mode
	}
	if cur, ok := tx.held[obj]; !ok || mode == Write && cur == Read {
		tx.held[obj] = mode
	}
	emitGrant(m.k, 0, tx, obj, mode)
}

func (m *TwoPLCond) processQueue(obj ObjectID) {
	e := m.entries[obj]
	if e == nil {
		return
	}
	sort.SliceStable(e.queue, func(i, j int) bool {
		a, b := e.queue[i], e.queue[j]
		if a.tx.Eff() != b.tx.Eff() {
			return a.tx.Eff().Higher(b.tx.Eff())
		}
		return a.seq < b.seq
	})
	granted := 0
	for _, w := range e.queue {
		if holdersConflict(e, w.tx, w.mode) {
			break
		}
		m.grant(e, w.tx, obj, w.mode)
		w.tok.Wake(nil)
		granted++
	}
	e.queue = e.queue[granted:]
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(m.entries, obj)
	}
}

func (m *TwoPLCond) dropWaiter(e *lockEntry, w *lockWaiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	m.processQueue(w.obj)
}
