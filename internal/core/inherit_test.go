package core

import (
	"testing"

	"rtlock/internal/sim"
)

func mkTx(id, deadline int64) *TxState {
	return NewTxState(id, sim.Priority{Deadline: deadline, TxID: id}, nil)
}

func TestGraphBlameRaisesHolder(t *testing.T) {
	g := newInheritGraph()
	holder := mkTx(1, 100)
	waiter := mkTx(2, 10)
	g.setBlame(waiter, []*TxState{holder})
	if holder.Eff() != waiter.Base {
		t.Fatalf("holder eff = %v, want inherited %v", holder.Eff(), waiter.Base)
	}
	g.clear(waiter)
	if holder.Eff() != holder.Base {
		t.Fatalf("holder eff = %v after clear, want base", holder.Eff())
	}
}

func TestGraphBlameHighestOfMany(t *testing.T) {
	g := newInheritGraph()
	holder := mkTx(1, 100)
	w1 := mkTx(2, 50)
	w2 := mkTx(3, 10) // most urgent
	g.setBlame(w1, []*TxState{holder})
	g.setBlame(w2, []*TxState{holder})
	if holder.Eff() != w2.Base {
		t.Fatalf("holder eff = %v, want the most urgent waiter's %v", holder.Eff(), w2.Base)
	}
	g.clear(w2)
	if holder.Eff() != w1.Base {
		t.Fatalf("holder eff = %v after w2 left, want %v", holder.Eff(), w1.Base)
	}
}

func TestGraphTransitiveChain(t *testing.T) {
	g := newInheritGraph()
	a := mkTx(1, 10) // urgent, blocked by b
	b := mkTx(2, 50) // blocked by c
	c := mkTx(3, 90)
	g.setBlame(b, []*TxState{c})
	g.setBlame(a, []*TxState{b})
	if b.Eff() != a.Base {
		t.Fatalf("b eff = %v", b.Eff())
	}
	if c.Eff() != a.Base {
		t.Fatalf("c eff = %v, want transitive inheritance of a's priority", c.Eff())
	}
	// a departs: both revert along the chain.
	g.clear(a)
	if b.Eff() != b.Base || c.Eff() != b.Base {
		t.Fatalf("after a left: b=%v c=%v", b.Eff(), c.Eff())
	}
}

func TestGraphDropHolderShedsAndDetaches(t *testing.T) {
	g := newInheritGraph()
	holder := mkTx(1, 100)
	w := mkTx(2, 10)
	g.setBlame(w, []*TxState{holder})
	g.dropHolder(holder)
	if holder.Eff() != holder.Base {
		t.Fatalf("holder kept inherited priority: %v", holder.Eff())
	}
	// The waiter has no blame edges left; re-blaming elsewhere works.
	other := mkTx(3, 200)
	g.setBlame(w, []*TxState{other})
	if other.Eff() != w.Base {
		t.Fatalf("re-blame did not raise the new holder: %v", other.Eff())
	}
}

func TestGraphCycleTerminates(t *testing.T) {
	// A waits-for cycle (possible under 2PL) must not loop the
	// propagation forever.
	g := newInheritGraph()
	a := mkTx(1, 10)
	b := mkTx(2, 20)
	g.setBlame(a, []*TxState{b})
	g.setBlame(b, []*TxState{a}) // cycle
	// Both end up at the highest priority on the cycle.
	if b.Eff() != a.Base {
		t.Fatalf("b eff = %v", b.Eff())
	}
	g.clear(a)
	g.clear(b)
	if a.Eff() != a.Base || b.Eff() != b.Base {
		t.Fatalf("cycle cleanup: a=%v b=%v", a.Eff(), b.Eff())
	}
}

func TestGraphSelfBlameIgnored(t *testing.T) {
	g := newInheritGraph()
	a := mkTx(1, 10)
	g.setBlame(a, []*TxState{a})
	if a.Eff() != a.Base {
		t.Fatalf("self-blame changed priority: %v", a.Eff())
	}
}

func TestGraphReblameReplacesEdges(t *testing.T) {
	g := newInheritGraph()
	w := mkTx(1, 10)
	h1 := mkTx(2, 100)
	h2 := mkTx(3, 200)
	g.setBlame(w, []*TxState{h1})
	g.setBlame(w, []*TxState{h2}) // replaces h1
	if h1.Eff() != h1.Base {
		t.Fatalf("h1 kept stale inheritance: %v", h1.Eff())
	}
	if h2.Eff() != w.Base {
		t.Fatalf("h2 eff = %v", h2.Eff())
	}
}

func TestOnPrioChangeFires(t *testing.T) {
	g := newInheritGraph()
	holder := mkTx(1, 100)
	var calls []sim.Priority
	holder.OnPrioChange = func(p sim.Priority) { calls = append(calls, p) }
	w := mkTx(2, 10)
	g.setBlame(w, []*TxState{holder})
	g.clear(w)
	if len(calls) != 2 {
		t.Fatalf("OnPrioChange calls = %d, want inherit+shed", len(calls))
	}
	if calls[0] != w.Base || calls[1] != holder.Base {
		t.Fatalf("calls = %v", calls)
	}
}

func TestManagerNames(t *testing.T) {
	k := sim.NewKernel()
	cases := map[string]Manager{
		"2PL":    NewTwoPL(k),
		"2PL-P":  NewTwoPLPriority(k),
		"2PL-PI": NewTwoPLInherit(k),
		"2PL-DD": NewTwoPLDetect(k),
		"2PL-HP": NewTwoPLHP(k),
		"PCP":    NewCeiling(k),
		"PCP-X":  NewCeilingExclusive(k),
		"TO":     NewTimestamp(k),
	}
	for want, m := range cases {
		if m.Name() != want {
			t.Fatalf("Name() = %q, want %q", m.Name(), want)
		}
	}
}

func TestTxStateAccessors(t *testing.T) {
	st := mkTx(1, 10)
	st.WriteSet = []ObjectID{3, 5}
	if st.WantsWrite(4) || !st.WantsWrite(5) {
		t.Fatal("WantsWrite")
	}
	if _, ok := st.Holds(3); ok {
		t.Fatal("Holds on fresh state")
	}
	st.setHeld(3, Write)
	if m, ok := st.Holds(3); !ok || m != Write {
		t.Fatal("Holds after grant")
	}
	if st.HeldCount() != 1 {
		t.Fatalf("HeldCount = %d", st.HeldCount())
	}
}

func TestRegisterUnregisterNoOps(t *testing.T) {
	k := sim.NewKernel()
	st := mkTx(1, 10)
	for _, m := range []Manager{NewTwoPL(k), NewTwoPLHP(k), NewTwoPLCond(k)} {
		m.Register(st)
		m.Unregister(st)
	}
}

func TestCondCancelWaiterUnblocksQueue(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLCond(k)
	ms := sim.Millisecond
	// High-priority holder; two lower-priority waiters with generous
	// slack (spared); the first waiter is canceled mid-wait and the
	// second must still be granted.
	holder := &scriptTx{id: 1, deadline: int64(sim.Time(100 * ms)), steps: []step{{obj: 1, mode: Write, work: 20 * ms}}}
	victim := &scriptTx{id: 2, deadline: int64(sim.Time(900 * ms)), start: 1 * ms, steps: []step{{obj: 1, mode: Write, work: 5 * ms}}}
	after := &scriptTx{id: 3, deadline: int64(sim.Time(950 * ms)), start: 2 * ms, steps: []step{{obj: 1, mode: Write, work: 5 * ms}}}
	k.At(sim.Time(5*ms), func() {
		victim.st.Proc.Interrupt(ErrRestart)
	})
	for _, tx := range []*scriptTx{holder, victim, after} {
		tx := tx
		k.Spawn("tx", func(p *sim.Proc) {
			if err := p.Sleep(tx.start); err != nil {
				return
			}
			st := NewTxState(tx.id, sim.Priority{Deadline: tx.deadline, TxID: tx.id}, p)
			st.Estimate = 20 * ms
			tx.st = st
			m.Register(st)
			defer m.Unregister(st)
			defer m.ReleaseAll(st)
			for _, s := range tx.steps {
				if err := m.Acquire(p, st, s.obj, s.mode); err != nil {
					tx.err = err
					return
				}
				if err := p.Sleep(s.work); err != nil {
					tx.err = err
					return
				}
			}
			tx.done = true
		})
	}
	k.Run()
	if err := k.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if victim.err == nil {
		t.Fatal("victim was not canceled")
	}
	if !after.done {
		t.Fatal("waiter behind canceled victim never granted")
	}
	if m.Waiting() != 0 {
		t.Fatalf("leaked waiters: %d", m.Waiting())
	}
	if m.Name() != "2PL-CR" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestModeString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("mode names")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must render something")
	}
}
