package core

import (
	"errors"
	"testing"

	"rtlock/internal/sim"
)

func TestDetectBreaksDeadlock(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLDetect(k)
	// Cross-order deadlock; the detector must abort the lower-priority
	// transaction (b, later deadline) and let a finish.
	a := &scriptTx{id: 1, deadline: 1, steps: []step{
		{obj: 1, mode: Write, work: 10 * sim.Millisecond},
		{obj: 2, mode: Write, work: 10 * sim.Millisecond},
	}}
	b := &scriptTx{id: 2, deadline: 2, start: 1 * sim.Millisecond, steps: []step{
		{obj: 2, mode: Write, work: 10 * sim.Millisecond},
		{obj: 1, mode: Write, work: 10 * sim.Millisecond},
	}}
	runScript(t, k, m, []*scriptTx{a, b})
	if !a.done {
		t.Fatalf("a stuck: %v", a.err)
	}
	if !errors.Is(b.err, ErrRestart) {
		t.Fatalf("victim err = %v, want ErrRestart", b.err)
	}
	if m.DeadlocksResolved != 1 {
		t.Fatalf("DeadlocksResolved = %d, want 1", m.DeadlocksResolved)
	}
}

func TestDetectVictimIsRequesterWhenLowest(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLDetect(k)
	// Here the LOWER-priority transaction closes the cycle: it must be
	// chosen as victim itself and get ErrRestart synchronously.
	a := &scriptTx{id: 1, deadline: 1, steps: []step{
		{obj: 1, mode: Write, work: 20 * sim.Millisecond},
		{obj: 2, mode: Write, work: 10 * sim.Millisecond},
	}}
	b := &scriptTx{id: 2, deadline: 2, start: 1 * sim.Millisecond, steps: []step{
		{obj: 2, mode: Write, work: 5 * sim.Millisecond},
		{obj: 1, mode: Write, work: 10 * sim.Millisecond},
	}}
	// Timeline: a locks 1 at 0. b locks 2 at 1ms, works till 6ms, then
	// requests 1 → waits (no cycle yet: a is running, not waiting). At
	// 20ms a requests 2 → cycle; victim is b (lower priority). b gets
	// wounded while parked.
	runScript(t, k, m, []*scriptTx{a, b})
	if !a.done {
		t.Fatalf("a stuck: %v", a.err)
	}
	if !errors.Is(b.err, ErrRestart) {
		t.Fatalf("b err = %v", b.err)
	}
}

func TestDetectNoFalsePositives(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLDetect(k)
	holder := &scriptTx{id: 1, deadline: 1, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	waiter := &scriptTx{id: 2, deadline: 2, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{holder, waiter})
	if !holder.done || !waiter.done {
		t.Fatalf("holder=%v waiter=%v", holder.done, waiter.done)
	}
	if m.DeadlocksResolved != 0 {
		t.Fatalf("false positive: DeadlocksResolved = %d", m.DeadlocksResolved)
	}
}

func TestDetectLowestPrioritySelection(t *testing.T) {
	mk := func(id, deadline int64) *TxState {
		return NewTxState(id, sim.Priority{Deadline: deadline, TxID: id}, nil)
	}
	urgent := mk(1, 10)
	mid := mk(2, 20)
	lazy := mk(3, 30)
	if got := lowestPriority([]*TxState{urgent, lazy, mid}); got != lazy {
		t.Fatalf("victim = tx %d, want the least urgent (3)", got.ID)
	}
	if got := lowestPriority([]*TxState{urgent}); got != urgent {
		t.Fatal("single-element cycle")
	}
}
