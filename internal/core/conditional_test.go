package core

import (
	"errors"
	"testing"

	"rtlock/internal/sim"
)

// condScript runs scripted transactions under TwoPLCond with explicit
// execution estimates.
func condScript(t *testing.T, txs []*scriptTx, estimates map[int64]sim.Duration) *TwoPLCond {
	t.Helper()
	k := sim.NewKernel()
	m := NewTwoPLCond(k)
	for _, tx := range txs {
		tx := tx
		est := estimates[tx.id]
		k.Spawn("tx", func(p *sim.Proc) {
			if err := p.Sleep(tx.start); err != nil {
				tx.err = err
				return
			}
			st := NewTxState(tx.id, sim.Priority{Deadline: tx.deadline, TxID: tx.id}, p)
			st.Estimate = est
			tx.st = st
			m.Register(st)
			defer m.Unregister(st)
			defer m.ReleaseAll(st)
			for _, s := range tx.steps {
				if err := m.Acquire(p, st, s.obj, s.mode); err != nil {
					tx.err = err
					return
				}
				if err := p.Sleep(s.work); err != nil {
					tx.err = err
					return
				}
			}
			tx.done = true
			tx.doneAt = p.Now()
		})
	}
	k.Run()
	if err := k.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	return m
}

func TestCondSparesWhenSlackGenerous(t *testing.T) {
	ms := sim.Millisecond
	// Holder estimate 50ms; requester's deadline is 500ms away: it can
	// afford to wait, so the holder is spared.
	holder := &scriptTx{id: 2, deadline: int64(sim.Time(800 * ms)), steps: []step{{obj: 1, mode: Write, work: 50 * ms}}}
	req := &scriptTx{id: 1, deadline: int64(sim.Time(500 * ms)), start: 10 * ms, steps: []step{{obj: 1, mode: Write, work: 5 * ms}}}
	m := condScript(t, []*scriptTx{holder, req}, map[int64]sim.Duration{2: 50 * ms, 1: 5 * ms})
	if !holder.done {
		t.Fatalf("spared holder did not finish: %v", holder.err)
	}
	if !req.done || req.doneAt != sim.Time(55*ms) {
		t.Fatalf("requester done=%v at %v, want 55ms (waited)", req.done, req.doneAt)
	}
	if m.Wounds != 0 || m.Spared != 1 {
		t.Fatalf("wounds=%d spared=%d, want 0/1", m.Wounds, m.Spared)
	}
}

func TestCondWoundsWhenSlackTight(t *testing.T) {
	ms := sim.Millisecond
	// Holder estimate 200ms; requester's deadline only 60ms away: it
	// cannot wait, so the holder is wounded.
	holder := &scriptTx{id: 2, deadline: int64(sim.Time(800 * ms)), steps: []step{{obj: 1, mode: Write, work: 200 * ms}}}
	req := &scriptTx{id: 1, deadline: int64(sim.Time(60 * ms)), start: 10 * ms, steps: []step{{obj: 1, mode: Write, work: 5 * ms}}}
	m := condScript(t, []*scriptTx{holder, req}, map[int64]sim.Duration{2: 200 * ms, 1: 5 * ms})
	if !errors.Is(holder.err, ErrRestart) {
		t.Fatalf("holder err = %v, want wounded", holder.err)
	}
	if !req.done || req.doneAt != sim.Time(15*ms) {
		t.Fatalf("requester done=%v at %v, want 15ms", req.done, req.doneAt)
	}
	if m.Wounds != 1 {
		t.Fatalf("wounds = %d, want 1", m.Wounds)
	}
}

func TestCondNeverWoundsHigherPriority(t *testing.T) {
	ms := sim.Millisecond
	// The holder has the earlier deadline (higher priority); even a
	// desperate lower-priority requester must wait.
	holder := &scriptTx{id: 1, deadline: int64(sim.Time(100 * ms)), steps: []step{{obj: 1, mode: Write, work: 50 * ms}}}
	req := &scriptTx{id: 2, deadline: int64(sim.Time(20 * ms)), start: 10 * ms, steps: []step{{obj: 1, mode: Write, work: 5 * ms}}}
	// Note: req's deadline is EARLIER, so it is actually higher
	// priority… invert: give req the later deadline but tiny slack is
	// impossible then. Use ids to break the tie instead: same deadline,
	// holder id 1 wins ties.
	holder.deadline = int64(sim.Time(100 * ms))
	req.deadline = int64(sim.Time(100 * ms))
	m := condScript(t, []*scriptTx{holder, req}, map[int64]sim.Duration{1: 50 * ms, 2: 5 * ms})
	if !holder.done {
		t.Fatalf("higher-priority holder wounded: %v", holder.err)
	}
	if m.Wounds != 0 {
		t.Fatalf("wounds = %d, want 0", m.Wounds)
	}
	if !req.done {
		t.Fatalf("requester stuck: %v", req.err)
	}
}
