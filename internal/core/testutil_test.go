package core

import (
	"math/rand"
	"testing"

	"rtlock/internal/sim"
)

// step is one scripted lock acquisition followed by a hold period of
// simulated work before the next step.
type step struct {
	obj  ObjectID
	mode Mode
	work sim.Duration
}

// scriptTx is a scripted transaction for protocol-level tests: it starts
// (and registers) at a given time, optionally pauses (active but not yet
// requesting locks — this is when its access sets contribute to ceilings
// without holding anything), then acquires locks per its steps, holding
// each for work before the next acquisition, and finally releases
// everything.
type scriptTx struct {
	id       int64
	deadline int64
	start    sim.Duration
	pause    sim.Duration
	steps    []step

	st     *TxState
	err    error
	done   bool
	doneAt sim.Time
}

func (s *scriptTx) readWriteSets() (reads, writes []ObjectID) {
	seenR := make(map[ObjectID]bool)
	seenW := make(map[ObjectID]bool)
	for _, st := range s.steps {
		if st.mode == Write {
			if !seenW[st.obj] {
				seenW[st.obj] = true
				writes = append(writes, st.obj)
			}
		} else if !seenR[st.obj] {
			seenR[st.obj] = true
			reads = append(reads, st.obj)
		}
	}
	return reads, writes
}

// runScript spawns every scripted transaction and runs the kernel to
// completion. Transactions that cannot finish (deadlock) remain live;
// the caller inspects done flags. The kernel is shut down before return
// so no goroutines leak.
func runScript(t *testing.T, k *sim.Kernel, mgr Manager, txs []*scriptTx) {
	t.Helper()
	for _, tx := range txs {
		tx := tx
		k.Spawn("tx", func(p *sim.Proc) {
			if err := p.Sleep(tx.start); err != nil {
				tx.err = err
				return
			}
			st := NewTxState(tx.id, sim.Priority{Deadline: tx.deadline, TxID: tx.id}, p)
			st.ReadSet, st.WriteSet = tx.readWriteSets()
			tx.st = st
			mgr.Register(st)
			defer mgr.Unregister(st)
			defer mgr.ReleaseAll(st)
			if err := p.Sleep(tx.pause); err != nil {
				tx.err = err
				return
			}
			for _, s := range tx.steps {
				if err := mgr.Acquire(p, st, s.obj, s.mode); err != nil {
					tx.err = err
					return
				}
				if err := p.Sleep(s.work); err != nil {
					tx.err = err
					return
				}
			}
			tx.done = true
			tx.doneAt = p.Now()
		})
	}
	k.Run()
	if err := k.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// randomScript builds a reproducible random workload for property tests.
// All transactions register at time zero (a static population, as the
// ceiling protocol's deadlock-freedom theorem assumes) and begin
// executing after individual random pauses.
func randomScript(seed int64) []*scriptTx {
	rng := rand.New(rand.NewSource(seed))
	nTx := 2 + rng.Intn(7)
	nObj := 2 + rng.Intn(5)
	txs := make([]*scriptTx, 0, nTx)
	for i := 0; i < nTx; i++ {
		nSteps := 1 + rng.Intn(4)
		steps := make([]step, 0, nSteps)
		used := make(map[ObjectID]bool)
		for j := 0; j < nSteps; j++ {
			obj := ObjectID(rng.Intn(nObj))
			if used[obj] {
				continue
			}
			used[obj] = true
			mode := Read
			if rng.Intn(2) == 0 {
				mode = Write
			}
			steps = append(steps, step{obj: obj, mode: mode, work: sim.Duration(1+rng.Intn(50)) * sim.Millisecond})
		}
		if len(steps) == 0 {
			continue
		}
		txs = append(txs, &scriptTx{
			id:       int64(i + 1),
			deadline: int64(rng.Intn(10000)),
			pause:    sim.Duration(rng.Intn(100)) * sim.Millisecond,
			steps:    steps,
		})
	}
	return txs
}

func allDone(txs []*scriptTx) bool {
	for _, tx := range txs {
		if !tx.done {
			return false
		}
	}
	return true
}
