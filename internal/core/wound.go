package core

import "errors"

// ErrRestart tells the transaction layer to abort the current attempt,
// release everything, and try again with the same deadline. It is how
// abort-based protocols (the High-Priority wound scheme, timestamp
// ordering, deadlock detection) reject work, in contrast to the
// blocking-based protocols that park the requester. The paper's §5
// discusses exactly this trade: an abort undoes completed work and the
// redo may push this or other transactions past their deadlines.
var ErrRestart = errors.New("core: transaction aborted; restart")

// RequestWound asks the transaction to abort its current attempt with
// err. If the transaction's process is parked (lock wait, CPU, I/O) it
// is interrupted immediately; otherwise the wound is left pending and
// the transaction layer observes it via Wounded at its next step
// boundary.
func (t *TxState) RequestWound(err error) {
	if t.wounded == nil {
		t.wounded = err
	}
	if t.Proc != nil {
		t.Proc.Interrupt(err)
	}
}

// Wounded returns the pending wound error, if any.
func (t *TxState) Wounded() error { return t.wounded }
