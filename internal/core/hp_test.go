package core

import (
	"errors"
	"testing"

	"rtlock/internal/sim"
)

// hpScript runs scripted transactions under TwoPLHP, with wounded
// attempts recorded (the core-level harness does not restart; the txn
// layer owns that).
func TestHPWoundsLowerPriorityHolder(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLHP(k)
	low := &scriptTx{id: 2, deadline: 100, steps: []step{{obj: 1, mode: Write, work: 100 * sim.Millisecond}}}
	high := &scriptTx{id: 1, deadline: 1, start: 10 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{low, high})
	if !errors.Is(low.err, ErrRestart) {
		t.Fatalf("low-priority holder err = %v, want ErrRestart (wounded)", low.err)
	}
	if !high.done {
		t.Fatalf("high-priority requester stuck: %v", high.err)
	}
	// Wounded at 10ms, high then runs 5ms.
	if high.doneAt != sim.Time(15*sim.Millisecond) {
		t.Fatalf("high done at %v, want 15ms", high.doneAt)
	}
	if m.Wounds != 1 {
		t.Fatalf("Wounds = %d, want 1", m.Wounds)
	}
}

func TestHPHigherPriorityHolderBlocksRequester(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLHP(k)
	high := &scriptTx{id: 1, deadline: 1, steps: []step{{obj: 1, mode: Write, work: 30 * sim.Millisecond}}}
	low := &scriptTx{id: 2, deadline: 100, start: 5 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{high, low})
	if high.err != nil || low.err != nil {
		t.Fatalf("errs: high=%v low=%v", high.err, low.err)
	}
	if low.doneAt != sim.Time(35*sim.Millisecond) {
		t.Fatalf("low done at %v, want 35ms (waits, no wound)", low.doneAt)
	}
	if m.Wounds != 0 {
		t.Fatalf("Wounds = %d, want 0", m.Wounds)
	}
}

func TestHPWoundsAllConflictingReaders(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLHP(k)
	r1 := &scriptTx{id: 2, deadline: 20, steps: []step{{obj: 1, mode: Read, work: 100 * sim.Millisecond}}}
	r2 := &scriptTx{id: 3, deadline: 30, steps: []step{{obj: 1, mode: Read, work: 100 * sim.Millisecond}}}
	w := &scriptTx{id: 1, deadline: 1, start: 10 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{r1, r2, w})
	if !errors.Is(r1.err, ErrRestart) || !errors.Is(r2.err, ErrRestart) {
		t.Fatalf("reader errs: %v / %v, want both wounded", r1.err, r2.err)
	}
	if !w.done || w.doneAt != sim.Time(15*sim.Millisecond) {
		t.Fatalf("writer done=%v at %v, want 15ms", w.done, w.doneAt)
	}
	if m.Wounds != 2 {
		t.Fatalf("Wounds = %d, want 2", m.Wounds)
	}
}

func TestHPNoDeadlockAmongDistinctPriorities(t *testing.T) {
	// The classic cross-order scenario: under HP the higher-priority
	// transaction wounds the lower one instead of deadlocking.
	k := sim.NewKernel()
	m := NewTwoPLHP(k)
	a := &scriptTx{id: 1, deadline: 1, steps: []step{
		{obj: 1, mode: Write, work: 10 * sim.Millisecond},
		{obj: 2, mode: Write, work: 10 * sim.Millisecond},
	}}
	b := &scriptTx{id: 2, deadline: 2, start: 1 * sim.Millisecond, steps: []step{
		{obj: 2, mode: Write, work: 10 * sim.Millisecond},
		{obj: 1, mode: Write, work: 10 * sim.Millisecond},
	}}
	runScript(t, k, m, []*scriptTx{a, b})
	if !a.done {
		t.Fatalf("high-priority a stuck: %v", a.err)
	}
	if !errors.Is(b.err, ErrRestart) {
		t.Fatalf("b err = %v, want wounded", b.err)
	}
}

func TestHPPendingWoundWhenNotParked(t *testing.T) {
	// RequestWound on a transaction that is not parked leaves the
	// wound pending; Wounded() reports it.
	st := NewTxState(1, sim.Priority{Deadline: 1, TxID: 1}, nil)
	if st.Wounded() != nil {
		t.Fatal("fresh state already wounded")
	}
	st.RequestWound(ErrRestart)
	if !errors.Is(st.Wounded(), ErrRestart) {
		t.Fatalf("Wounded = %v", st.Wounded())
	}
	// A second wound keeps the first error.
	other := errors.New("other")
	st.RequestWound(other)
	if !errors.Is(st.Wounded(), ErrRestart) {
		t.Fatal("second wound overwrote the first")
	}
}

func TestHPReleaseWakesQueue(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLHP(k)
	holder := &scriptTx{id: 1, deadline: 1, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	waiter := &scriptTx{id: 2, deadline: 2, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{holder, waiter})
	if !holder.done || !waiter.done {
		t.Fatalf("holder=%v waiter=%v", holder.done, waiter.done)
	}
	if m.Waiting() != 0 {
		t.Fatalf("leaked waiters: %d", m.Waiting())
	}
}
