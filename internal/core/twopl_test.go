package core

import (
	"errors"
	"testing"

	"rtlock/internal/sim"
)

func TestTwoPLGrantAndRelease(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPL(k)
	a := &scriptTx{id: 1, deadline: 10, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	b := &scriptTx{id: 2, deadline: 20, start: sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{a, b})
	if !a.done || !b.done {
		t.Fatalf("a.done=%v b.done=%v", a.done, b.done)
	}
	if b.doneAt <= a.doneAt {
		t.Fatalf("b finished at %d, before a at %d; write lock not exclusive", b.doneAt, a.doneAt)
	}
	if m.HeldLocks() != 0 || m.Waiting() != 0 {
		t.Fatalf("lock table not empty: held=%d waiting=%d", m.HeldLocks(), m.Waiting())
	}
}

func TestTwoPLReadSharing(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPL(k)
	a := &scriptTx{id: 1, deadline: 10, steps: []step{{obj: 1, mode: Read, work: 10 * sim.Millisecond}}}
	b := &scriptTx{id: 2, deadline: 20, start: sim.Millisecond, steps: []step{{obj: 1, mode: Read, work: 10 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{a, b})
	// b starts 1ms after a and works 10ms; sharing means it finishes at
	// 11ms rather than serializing to 21ms.
	if b.doneAt != sim.Time(11*sim.Millisecond) {
		t.Fatalf("b finished at %v, want 11ms (shared read)", b.doneAt)
	}
}

func TestTwoPLFIFOOrder(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPL(k)
	holder := &scriptTx{id: 1, deadline: 1, steps: []step{{obj: 1, mode: Write, work: 20 * sim.Millisecond}}}
	// Low priority arrives before high priority; FIFO serves low first.
	low := &scriptTx{id: 2, deadline: 99, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	high := &scriptTx{id: 3, deadline: 2, start: 2 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{holder, low, high})
	if !(low.doneAt < high.doneAt) {
		t.Fatalf("FIFO violated: low done %v, high done %v", low.doneAt, high.doneAt)
	}
}

func TestTwoPLPriorityOrder(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLPriority(k)
	holder := &scriptTx{id: 1, deadline: 1, steps: []step{{obj: 1, mode: Write, work: 20 * sim.Millisecond}}}
	low := &scriptTx{id: 2, deadline: 99, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	high := &scriptTx{id: 3, deadline: 2, start: 2 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{holder, low, high})
	if !(high.doneAt < low.doneAt) {
		t.Fatalf("priority queue violated: high done %v, low done %v", high.doneAt, low.doneAt)
	}
}

func TestTwoPLFIFONewRequestCannotJumpQueue(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPL(k)
	// Writer holds; a write waiter queues; then a read request arrives.
	// Reads are compatible with nothing held after release order decides
	// — under FIFO the late read must wait behind the queued write.
	holder := &scriptTx{id: 1, deadline: 1, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	w := &scriptTx{id: 2, deadline: 2, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	r := &scriptTx{id: 3, deadline: 3, start: 2 * sim.Millisecond, steps: []step{{obj: 1, mode: Read, work: 1 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{holder, w, r})
	if !(w.doneAt < r.doneAt) {
		t.Fatalf("late read jumped FIFO queue: write done %v, read done %v", w.doneAt, r.doneAt)
	}
}

func TestTwoPLPriorityAdmissionJumpsLowerWaiters(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLPriority(k)
	// Reader holds obj 1; a LOW priority writer queues; a HIGH priority
	// reader arriving later is compatible with the holder and outranks
	// the queued writer, so it is admitted immediately.
	holder := &scriptTx{id: 1, deadline: 50, steps: []step{{obj: 1, mode: Read, work: 20 * sim.Millisecond}}}
	loWriter := &scriptTx{id: 2, deadline: 99, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	hiReader := &scriptTx{id: 3, deadline: 1, start: 2 * sim.Millisecond, steps: []step{{obj: 1, mode: Read, work: 5 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{holder, loWriter, hiReader})
	if hiReader.doneAt != sim.Time(7*sim.Millisecond) {
		t.Fatalf("high reader done %v, want 7ms (admitted over queued low writer)", hiReader.doneAt)
	}
}

func TestTwoPLUpgradeSoleHolder(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPL(k)
	up := &scriptTx{id: 1, deadline: 1, steps: []step{
		{obj: 1, mode: Read, work: 5 * sim.Millisecond},
		{obj: 1, mode: Write, work: 5 * sim.Millisecond},
	}}
	runScript(t, k, m, []*scriptTx{up})
	if !up.done {
		t.Fatalf("sole-holder upgrade did not complete: %v", up.err)
	}
}

func TestTwoPLDeadlockDetected(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPL(k)
	// Classic cross-order deadlock: a locks 1 then 2; b locks 2 then 1.
	a := &scriptTx{id: 1, deadline: 1, steps: []step{
		{obj: 1, mode: Write, work: 10 * sim.Millisecond},
		{obj: 2, mode: Write, work: 10 * sim.Millisecond},
	}}
	b := &scriptTx{id: 2, deadline: 2, start: 1 * sim.Millisecond, steps: []step{
		{obj: 2, mode: Write, work: 10 * sim.Millisecond},
		{obj: 1, mode: Write, work: 10 * sim.Millisecond},
	}}
	var cycle []*TxState
	k.At(sim.Time(50*sim.Millisecond), func() { cycle = m.FindDeadlock() })
	runScript(t, k, m, []*scriptTx{a, b})
	if a.done || b.done {
		t.Fatalf("expected both stuck: a=%v b=%v", a.done, b.done)
	}
	if len(cycle) != 2 {
		t.Fatalf("FindDeadlock returned %d transactions, want 2", len(cycle))
	}
	if !errors.Is(a.err, sim.ErrShutdown) || !errors.Is(b.err, sim.ErrShutdown) {
		t.Fatalf("stuck transactions should unwind with ErrShutdown, got %v / %v", a.err, b.err)
	}
}

func TestTwoPLNoDeadlockNoCycle(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPL(k)
	a := &scriptTx{id: 1, deadline: 1, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	b := &scriptTx{id: 2, deadline: 2, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	var cycle []*TxState
	k.At(sim.Time(5*sim.Millisecond), func() { cycle = m.FindDeadlock() })
	runScript(t, k, m, []*scriptTx{a, b})
	if cycle != nil {
		t.Fatalf("FindDeadlock reported a cycle in a deadlock-free table: %v", cycle)
	}
}

func TestTwoPLInheritRaisesHolder(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLInherit(k)
	var holderPrios []sim.Priority
	low := &scriptTx{id: 1, deadline: 100, steps: []step{{obj: 1, mode: Write, work: 50 * sim.Millisecond}}}
	high := &scriptTx{id: 2, deadline: 1, start: 10 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	k.At(sim.Time(5*sim.Millisecond), func() {
		low.st.OnPrioChange = func(p sim.Priority) { holderPrios = append(holderPrios, p) }
	})
	runScript(t, k, m, []*scriptTx{low, high})
	if len(holderPrios) < 2 {
		t.Fatalf("expected inherit then shed, got %v", holderPrios)
	}
	inherited := holderPrios[0]
	if inherited != (sim.Priority{Deadline: 1, TxID: 2}) {
		t.Fatalf("holder inherited %v, want high's priority", inherited)
	}
	final := holderPrios[len(holderPrios)-1]
	if final != low.st.Base {
		t.Fatalf("holder ended at %v, want base %v", final, low.st.Base)
	}
}

func TestTwoPLInheritTransitive(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLInherit(k)
	// c holds obj2; b holds obj1 and blocks on obj2; a blocks on obj1.
	// a's priority must flow through b to c.
	c := &scriptTx{id: 3, deadline: 300, steps: []step{{obj: 2, mode: Write, work: 100 * sim.Millisecond}}}
	b := &scriptTx{id: 2, deadline: 200, start: 5 * sim.Millisecond, steps: []step{
		{obj: 1, mode: Write, work: 5 * sim.Millisecond},
		{obj: 2, mode: Write, work: 5 * sim.Millisecond},
	}}
	a := &scriptTx{id: 1, deadline: 1, start: 20 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	var cEff sim.Priority
	k.At(sim.Time(30*sim.Millisecond), func() { cEff = c.st.Eff() })
	runScript(t, k, m, []*scriptTx{a, b, c})
	want := sim.Priority{Deadline: 1, TxID: 1}
	if cEff != want {
		t.Fatalf("transitive inheritance: c ran at %v, want %v", cEff, want)
	}
}

func TestTwoPLCancelWaiterUnblocksQueue(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPLPriority(k)
	holder := &scriptTx{id: 1, deadline: 1, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	victim := &scriptTx{id: 2, deadline: 2, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	after := &scriptTx{id: 3, deadline: 3, start: 2 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	errKill := errors.New("kill")
	k.At(sim.Time(5*sim.Millisecond), func() {
		if !victim.st.Proc.Interrupt(errKill) {
			t.Error("interrupt failed")
		}
	})
	runScript(t, k, m, []*scriptTx{holder, victim, after})
	if !errors.Is(victim.err, errKill) {
		t.Fatalf("victim err = %v", victim.err)
	}
	if !after.done {
		t.Fatal("waiter behind canceled victim never granted")
	}
}

func TestTwoPLBlockedTimeAccounting(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPL(k)
	holder := &scriptTx{id: 1, deadline: 1, steps: []step{{obj: 1, mode: Write, work: 10 * sim.Millisecond}}}
	waiter := &scriptTx{id: 2, deadline: 2, start: 4 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 1 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{holder, waiter})
	if waiter.st.BlockedCount != 1 {
		t.Fatalf("BlockedCount = %d, want 1", waiter.st.BlockedCount)
	}
	if waiter.st.BlockedTime != 6*sim.Millisecond {
		t.Fatalf("BlockedTime = %v, want 6ms", waiter.st.BlockedTime)
	}
}

func TestTwoPLReacquireHeldLock(t *testing.T) {
	k := sim.NewKernel()
	m := NewTwoPL(k)
	tx := &scriptTx{id: 1, deadline: 1, steps: []step{
		{obj: 1, mode: Write, work: sim.Millisecond},
		{obj: 1, mode: Read, work: sim.Millisecond},  // weaker: no-op
		{obj: 1, mode: Write, work: sim.Millisecond}, // same: no-op
	}}
	runScript(t, k, m, []*scriptTx{tx})
	if !tx.done {
		t.Fatalf("reacquire failed: %v", tx.err)
	}
}
