package core

import (
	"testing"
	"testing/quick"

	"rtlock/internal/sim"
)

// TestPropCeilingNeverDeadlocks is the protocol's headline safety
// property: under the priority ceiling protocol every randomly generated
// workload runs to completion without deadline aborts — mutual deadlock
// of transactions cannot occur (§3.2).
func TestPropCeilingNeverDeadlocks(t *testing.T) {
	prop := func(seed int64) bool {
		txs := randomScript(seed)
		if len(txs) == 0 {
			return true
		}
		k := sim.NewKernel()
		m := NewCeiling(k)
		runScript(t, k, m, txs)
		return allDone(txs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCeilingExclusiveNeverDeadlocks checks the same property for the
// exclusive-semantics variant.
func TestPropCeilingExclusiveNeverDeadlocks(t *testing.T) {
	prop := func(seed int64) bool {
		txs := randomScript(seed)
		if len(txs) == 0 {
			return true
		}
		k := sim.NewKernel()
		m := NewCeilingExclusive(k)
		runScript(t, k, m, txs)
		return allDone(txs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropInheritedPriorityNeverBelowBase: no protocol ever lowers a
// transaction's effective priority below its assigned priority.
func TestPropInheritedPriorityNeverBelowBase(t *testing.T) {
	prop := func(seed int64) bool {
		txs := randomScript(seed)
		if len(txs) == 0 {
			return true
		}
		k := sim.NewKernel()
		m := NewTwoPLInherit(k)
		ok := true
		// Sample effective priorities periodically during the run. The
		// sample count is bounded so a deadlocked workload (possible
		// under 2PL) cannot keep the event queue alive forever.
		samples := 0
		var sample func()
		sample = func() {
			samples++
			for _, tx := range txs {
				if tx.st != nil && tx.st.Base.Higher(tx.st.Eff()) {
					ok = false
				}
			}
			if k.Live() > 0 && samples < 1000 {
				k.After(sim.Millisecond, sample)
			}
		}
		k.After(sim.Millisecond, sample)
		runScript(t, k, m, txs)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropTwoPLCompletesWithoutCrossOrder: when every transaction
// acquires objects in ascending order, 2PL cannot deadlock and every
// workload completes — a sanity check that incompleteness in other tests
// really comes from cycles.
func TestPropTwoPLCompletesWithoutCrossOrder(t *testing.T) {
	prop := func(seed int64) bool {
		txs := randomScript(seed)
		if len(txs) == 0 {
			return true
		}
		for _, tx := range txs {
			// Sort each transaction's steps by object id.
			for i := 0; i < len(tx.steps); i++ {
				for j := i + 1; j < len(tx.steps); j++ {
					if tx.steps[j].obj < tx.steps[i].obj {
						tx.steps[i], tx.steps[j] = tx.steps[j], tx.steps[i]
					}
				}
			}
		}
		k := sim.NewKernel()
		m := NewTwoPL(k)
		runScript(t, k, m, txs)
		// Read→write upgrades on the same object can still deadlock
		// (two readers upgrading); exclude those workloads.
		for _, tx := range txs {
			seen := map[ObjectID]bool{}
			for _, s := range tx.steps {
				if seen[s.obj] {
					return true // upgrade present: skip
				}
				seen[s.obj] = true
			}
		}
		return allDone(txs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropLockTableClean: after every run (any protocol), no locks are
// held and no waiters remain.
func TestPropLockTableClean(t *testing.T) {
	mk := []struct {
		name string
		mgr  func(*sim.Kernel) Manager
	}{
		{"2PL-P", func(k *sim.Kernel) Manager { return NewTwoPLPriority(k) }},
		{"PCP", func(k *sim.Kernel) Manager { return NewCeiling(k) }},
	}
	for _, tc := range mk {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prop := func(seed int64) bool {
				txs := randomScript(seed)
				if len(txs) == 0 {
					return true
				}
				k := sim.NewKernel()
				m := tc.mgr(k)
				runScript(t, k, m, txs)
				switch mm := m.(type) {
				case *TwoPL:
					return mm.HeldLocks() == 0 && mm.Waiting() == 0
				case *Ceiling:
					return mm.LockedObjects() == 0 && mm.Waiting() == 0
				}
				return false
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
