package core

import (
	"testing"
)

// TestSortedTxSetDeterministic covers the "after" half of the maprange
// fixes in inherit.go: flattening the same transaction set repeatedly —
// and sets built in different insertion orders — always yields ID
// order, so the inheritance graph walks (setBlame, clear, recompute)
// visit transactions identically on every run.
func TestSortedTxSetDeterministic(t *testing.T) {
	txs := make([]*TxState, 16)
	for i := range txs {
		txs[i] = &TxState{ID: int64(100 - i)}
	}
	build := func(order []int) map[*TxState]struct{} {
		set := make(map[*TxState]struct{})
		for _, i := range order {
			set[txs[i]] = struct{}{}
		}
		return set
	}
	forward := make([]int, len(txs))
	backward := make([]int, len(txs))
	for i := range txs {
		forward[i] = i
		backward[i] = len(txs) - 1 - i
	}
	ref := sortedTxSet(build(forward))
	for i := 1; i < len(ref); i++ {
		if ref[i-1].ID >= ref[i].ID {
			t.Fatalf("sortedTxSet not in ascending ID order at %d: %d >= %d", i, ref[i-1].ID, ref[i].ID)
		}
	}
	for trial := 0; trial < 50; trial++ {
		order := forward
		if trial%2 == 1 {
			order = backward
		}
		got := sortedTxSet(build(order))
		if len(got) != len(ref) {
			t.Fatalf("trial %d: length %d, want %d", trial, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: order diverged at %d: tx %d, want %d", trial, i, got[i].ID, ref[i].ID)
			}
		}
	}
}

// TestUnsortedTxSetDiverges is the matching "before" demonstration: the
// pre-fix pattern ranged over the set directly, and with pointer keys
// the iteration order varies run to run — which reached the journal via
// inheritance-donation order at waits-for cycles.
func TestUnsortedTxSetDiverges(t *testing.T) {
	walk := func() []int64 {
		set := make(map[*TxState]struct{})
		for i := 0; i < 16; i++ {
			set[&TxState{ID: int64(i)}] = struct{}{}
		}
		var order []int64
		for tx := range set { //rtlint:allow maprange deliberately unsorted to demonstrate the bug class
			order = append(order, tx.ID)
		}
		return order
	}
	first := walk()
	for trial := 0; trial < 100; trial++ {
		next := walk()
		for i := range next {
			if next[i] != first[i] {
				return // diverged, as the buggy pattern does
			}
		}
	}
	t.Skip("map iteration order did not vary in 100 trials on this runtime")
}
