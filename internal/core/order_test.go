package core

import (
	"testing"
)

// TestSortedTxSetDeterministic covers the invariant the inheritance
// graph walks (setBlame, clear, recompute) depend on: edge sets built
// with insertTx stay in ascending ID order and deduplicated regardless
// of insertion order, so every graph traversal visits transactions
// identically on every run.
func TestSortedTxSetDeterministic(t *testing.T) {
	txs := make([]*TxState, 16)
	for i := range txs {
		txs[i] = &TxState{ID: int64(100 - i)}
	}
	build := func(order []int) []*TxState {
		var set []*TxState
		for _, i := range order {
			set = insertTx(set, txs[i])
			set = insertTx(set, txs[i]) // duplicate insert must be a no-op
		}
		return set
	}
	forward := make([]int, len(txs))
	backward := make([]int, len(txs))
	for i := range txs {
		forward[i] = i
		backward[i] = len(txs) - 1 - i
	}
	ref := build(forward)
	if len(ref) != len(txs) {
		t.Fatalf("insertTx did not deduplicate: %d entries, want %d", len(ref), len(txs))
	}
	for i := 1; i < len(ref); i++ {
		if ref[i-1].ID >= ref[i].ID {
			t.Fatalf("insertTx set not in ascending ID order at %d: %d >= %d", i, ref[i-1].ID, ref[i].ID)
		}
	}
	for trial := 0; trial < 50; trial++ {
		order := forward
		if trial%2 == 1 {
			order = backward
		}
		got := build(order)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: length %d, want %d", trial, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: order diverged at %d: tx %d, want %d", trial, i, got[i].ID, ref[i].ID)
			}
		}
	}
	// deleteTx removes exactly the requested element and keeps order.
	got := build(forward)
	got = deleteTx(got, txs[7])
	if len(got) != len(txs)-1 {
		t.Fatalf("deleteTx: length %d, want %d", len(got), len(txs)-1)
	}
	for _, tx := range got {
		if tx == txs[7] {
			t.Fatal("deleteTx left the removed element in the set")
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Fatalf("deleteTx broke ID order at %d", i)
		}
	}
	if res := deleteTx(got, txs[7]); len(res) != len(got) {
		t.Fatal("deleteTx of absent element changed the set")
	}
}

// TestUnsortedTxSetDiverges is the matching "before" demonstration: the
// pre-fix pattern ranged over the set directly, and with pointer keys
// the iteration order varies run to run — which reached the journal via
// inheritance-donation order at waits-for cycles.
func TestUnsortedTxSetDiverges(t *testing.T) {
	walk := func() []int64 {
		set := make(map[*TxState]struct{})
		for i := 0; i < 16; i++ {
			set[&TxState{ID: int64(i)}] = struct{}{}
		}
		var order []int64
		for tx := range set { //rtlint:allow maprange deliberately unsorted to demonstrate the bug class
			order = append(order, tx.ID)
		}
		return order
	}
	first := walk()
	for trial := 0; trial < 100; trial++ {
		next := walk()
		for i := range next {
			if next[i] != first[i] {
				return // diverged, as the buggy pattern does
			}
		}
	}
	t.Skip("map iteration order did not vary in 100 trials on this runtime")
}
