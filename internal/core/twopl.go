package core

import (
	"rtlock/internal/sim"
)

// QueuePolicy orders a lock's wait queue.
type QueuePolicy int

// Queue policies for the two-phase locking family.
const (
	// QueueFIFO serves lock waiters in arrival order and never lets a
	// new request jump a non-empty queue (protocol L).
	QueueFIFO QueuePolicy = iota + 1
	// QueuePriority serves waiters in effective-priority order and
	// lets a new request be granted ahead of lower-priority waiters
	// (protocol P, and the base of the priority-inheritance variant).
	QueuePriority
)

// TwoPL is the two-phase locking family: protocol L (FIFO, no priority),
// protocol P (priority-ordered queues), and the basic priority
// inheritance protocol of §3.1 (priority queues plus inheritance by
// conflicting lock holders). Two-phase locking can deadlock; in the
// paper's experiments deadlocked transactions simply miss their hard
// deadlines and are aborted, which breaks the cycle. FindDeadlock exposes
// waits-for cycle detection for tests and for optional detection.
type TwoPL struct {
	k       *sim.Kernel
	pr      lockProbes
	policy  QueuePolicy
	inherit bool
	detect  bool
	graph   *inheritGraph
	table   lockTable
	seq     uint64
	name    string

	// DeadlocksResolved counts waits-for cycles broken by the
	// detection variant.
	DeadlocksResolved int
}

var _ Manager = (*TwoPL)(nil)

// lockEntry is one object's lock record in the two-phase locking family.
// Holders are a small unordered slice (every consumer either reduces
// them to a boolean or sorts by transaction id); entries are pooled via
// lockTable, which makes the create/drop churn of short lock lifetimes
// allocation-free.
//
//rtlint:pooled
type lockEntry struct {
	obj     ObjectID
	holders []lockHolder
	queue   []*lockWaiter
}

func (e *lockEntry) findHolder(tx *TxState) int {
	for i := range e.holders {
		if e.holders[i].tx == tx {
			return i
		}
	}
	return -1
}

// setHolder records tx as holding in mode, upgrading Read to Write;
// weaker re-acquisitions are ignored.
func (e *lockEntry) setHolder(tx *TxState, mode Mode) {
	if i := e.findHolder(tx); i >= 0 {
		if mode == Write && e.holders[i].mode == Read {
			e.holders[i].mode = Write
		}
		return
	}
	e.holders = append(e.holders, lockHolder{tx: tx, mode: mode})
}

func (e *lockEntry) removeHolder(tx *TxState) {
	if i := e.findHolder(tx); i >= 0 {
		last := len(e.holders) - 1
		e.holders[i] = e.holders[last]
		e.holders[last] = lockHolder{}
		e.holders = e.holders[:last]
	}
}

// lockTable is an object-indexed store of lock entries with a free list.
// An entry is reachable only through its table slot between get and
// drop, so pooling cannot alias live state.
type lockTable struct {
	entries []*lockEntry
	free    []*lockEntry
	// freeWaiters recycles parked-waiter records (see lockWaiter).
	freeWaiters []*lockWaiter
}

// getWaiter hands out a reset waiter from the pool. The caller must
// set w.owner before arming the cancel hook.
//
//rtlint:allocfree
func (t *lockTable) getWaiter() *lockWaiter {
	if n := len(t.freeWaiters); n > 0 {
		w := t.freeWaiters[n-1]
		t.freeWaiters[n-1] = nil
		t.freeWaiters = t.freeWaiters[:n-1]
		return w
	}
	return &lockWaiter{} //rtlint:allow allocfree pool-miss growth path: one waiter per high-water-mark, amortized to zero in steady state
}

// putWaiter recycles a waiter whose wait has fully ended (Park returned
// or the waiter was dropped before parking).
//
//rtlint:allocfree
func (t *lockTable) putWaiter(w *lockWaiter) {
	w.tx = nil
	w.e = nil
	w.tok.Reset()
	t.freeWaiters = append(t.freeWaiters, w)
}

// at returns obj's entry, nil when absent.
func (t *lockTable) at(obj ObjectID) *lockEntry {
	if int(obj) >= len(t.entries) {
		return nil
	}
	return t.entries[obj]
}

// get returns obj's entry, creating (from the pool) when absent.
//
//rtlint:allocfree
func (t *lockTable) get(obj ObjectID) *lockEntry {
	for int(obj) >= len(t.entries) {
		t.entries = append(t.entries, nil)
	}
	e := t.entries[obj]
	if e == nil {
		if n := len(t.free); n > 0 {
			e = t.free[n-1]
			t.free[n-1] = nil
			t.free = t.free[:n-1]
		} else {
			e = &lockEntry{} //rtlint:allow allocfree pool-miss growth path: one entry per high-water-mark of simultaneously locked objects
		}
		e.obj = obj
		t.entries[obj] = e
	}
	return e
}

// drop recycles an entry that has no holders and no waiters.
//
//rtlint:allocfree
func (t *lockTable) drop(e *lockEntry) {
	t.entries[e.obj] = nil
	e.holders = e.holders[:0]
	e.queue = e.queue[:0]
	t.free = append(t.free, e)
}

// waiterOwner routes the static cancel hook back to the manager that
// parked a lockWaiter. It is an interface rather than a stored method
// value because binding m.dropWaiter as a func value allocates its
// bound-method closure on every fresh waiter, while storing the
// manager pointer in an interface word does not.
type waiterOwner interface {
	dropWaiter(e *lockEntry, w *lockWaiter)
}

// lockWaiter is one parked waiter of the two-phase locking family.
// Waiters are pooled on the lockTable: by the time Acquire's Park
// returns, the grant and cancel paths have both detached the waiter
// from its queue, so recycling cannot alias a live wait. The owner
// (set per manager) lets the static cancel function route back to the
// owning manager's dropWaiter without a per-block closure; the entry
// pointer stays valid for the waiter's whole life because entries are
// only recycled once their queue is empty.
//
//rtlint:pooled
type lockWaiter struct {
	tx    *TxState
	obj   ObjectID
	mode  Mode
	tok   sim.Token
	seq   uint64
	e     *lockEntry
	owner waiterOwner
}

// lockWaiterCancel is the shared static cancel hook.
func lockWaiterCancel(arg any) {
	w := arg.(*lockWaiter)
	w.owner.dropWaiter(w.e, w)
}

// NewTwoPL returns protocol L: plain two-phase locking with FIFO queues
// and no priority support.
func NewTwoPL(k *sim.Kernel) *TwoPL {
	return &TwoPL{k: k, pr: newLockProbes(k), policy: QueueFIFO, name: "2PL"}
}

// NewTwoPLPriority returns protocol P: two-phase locking with
// priority-ordered wait queues.
func NewTwoPLPriority(k *sim.Kernel) *TwoPL {
	return &TwoPL{k: k, pr: newLockProbes(k), policy: QueuePriority, name: "2PL-P"}
}

// NewTwoPLInherit returns two-phase locking with basic priority
// inheritance (§3.1): a holder that blocks higher-priority transactions
// executes at the highest priority of the transactions it blocks.
// Blocking chains are still possible; the ceiling protocol exists to
// bound them.
func NewTwoPLInherit(k *sim.Kernel) *TwoPL {
	return &TwoPL{
		k:       k,
		pr:      newLockProbes(k),
		policy:  QueuePriority,
		inherit: true,
		graph:   newInheritGraph(),
		name:    "2PL-PI",
	}
}

// NewTwoPLDetect returns two-phase locking with priority queues and
// waits-for deadlock detection: whenever a new wait closes a cycle, the
// lowest-priority transaction on the cycle is aborted (to restart) — the
// conventional database resolution the paper's model omits in favor of
// letting deadline expiry break cycles. It exists as an ablation of that
// choice.
func NewTwoPLDetect(k *sim.Kernel) *TwoPL {
	return &TwoPL{
		k:      k,
		pr:     newLockProbes(k),
		policy: QueuePriority,
		detect: true,
		name:   "2PL-DD",
	}
}

// Name implements Manager.
func (m *TwoPL) Name() string { return m.name }

// Register implements Manager. The 2PL family needs no a-priori access
// set knowledge.
func (m *TwoPL) Register(tx *TxState) {}

// Unregister implements Manager.
func (m *TwoPL) Unregister(tx *TxState) {}

// Acquire implements Manager.
//
//rtlint:allocfree
func (m *TwoPL) Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error {
	m.pr.emitRequest(m.k, 0, tx, obj, mode)
	if held, ok := tx.Holds(obj); ok && (held == Write || mode == Read) {
		m.pr.emitGrant(m.k, 0, tx, obj, mode)
		return nil
	}
	e := m.table.get(obj) //rtlint:allow allocfree inlined pool-miss &lockEntry literal from get's growth path
	if m.admissible(e, tx, mode) {
		m.grant(e, tx, obj, mode)
		return nil
	}
	m.seq++
	w := m.table.getWaiter() //rtlint:allow allocfree inlined pool-miss &lockWaiter literal from getWaiter's growth path
	w.owner = m
	w.tx, w.obj, w.mode, w.seq, w.e = tx, obj, mode, m.seq, e
	e.queue = append(e.queue, w)
	blamed := m.blameFor(e, w)
	m.pr.emitBlock(m.k, 0, tx, obj, blamed, false)
	tx.noteBlocked(m.k.Now(), blamed) //rtlint:allow allocfree inlined lazy BlockedBy map, allocated once per TxState on its first block
	if m.inherit {
		m.graph.setBlame(tx, blamed)
	}
	if m.detect {
		if cycle := m.FindDeadlock(); len(cycle) > 0 {
			m.DeadlocksResolved++
			victim := lowestPriority(cycle)
			m.pr.emitWound(m.k, 0, victim, tx)
			if victim == tx {
				m.dropWaiter(e, w)
				m.pr.observeUnblocked(m.k, tx)
				m.table.putWaiter(w)
				return ErrRestart
			}
			victim.RequestWound(ErrRestart)
		}
	}
	w.tok.SetCancel(lockWaiterCancel, w)
	err := p.Park(&w.tok)
	m.pr.observeUnblocked(m.k, tx)
	m.table.putWaiter(w)
	return err
}

// lowestPriority picks the deadlock victim: the least urgent transaction
// on the cycle, ties broken by id for determinism.
func lowestPriority(cycle []*TxState) *TxState {
	victim := cycle[0]
	for _, t := range cycle[1:] {
		if victim.Eff().Higher(t.Eff()) || victim.Eff() == t.Eff() && t.ID > victim.ID {
			victim = t
		}
	}
	return victim
}

// ReleaseAll implements Manager.
//
//rtlint:allocfree
func (m *TwoPL) ReleaseAll(tx *TxState) {
	if len(tx.held) == 0 {
		return
	}
	// tx.held is sorted by object id, so the release order (and the
	// journal's release records) stays deterministic.
	for i := range tx.held {
		obj := tx.held[i].obj
		m.pr.emitRelease(m.k, 0, tx, obj)
		if e := m.table.at(obj); e != nil {
			e.removeHolder(tx)
		}
	}
	if m.inherit {
		m.graph.dropHolder(tx)
	}
	for i := range tx.held {
		m.processQueue(tx.held[i].obj)
	}
	tx.clearHeld()
}

// HeldLocks reports how many objects are currently locked (for tests).
func (m *TwoPL) HeldLocks() int {
	n := 0
	for _, e := range m.table.entries {
		if e != nil && len(e.holders) > 0 {
			n++
		}
	}
	return n
}

// Waiting reports how many transactions are parked in lock queues.
func (m *TwoPL) Waiting() int {
	n := 0
	for _, e := range m.table.entries {
		if e != nil {
			n += len(e.queue)
		}
	}
	return n
}

// FindDeadlock returns the transactions on one waits-for cycle, or nil if
// the lock table is deadlock-free right now. The waits-for relation
// follows each waiter's current blame set.
func (m *TwoPL) FindDeadlock() []*TxState {
	// Build edges in object order (the table is object-indexed, so the
	// scan is naturally sorted). Each waiter sits in exactly one queue,
	// so the edge sets would come out equal in any order, but object
	// order also pins edge-slice ordering if a transaction ever waited
	// twice.
	edges := make(map[*TxState][]*TxState)
	for _, e := range m.table.entries {
		if e == nil {
			continue
		}
		for _, w := range e.queue {
			edges[w.tx] = append(edges[w.tx], m.blameFor(e, w)...)
		}
	}
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[*TxState]int)
	var stack []*TxState
	var cycle []*TxState
	var visit func(t *TxState) bool
	visit = func(t *TxState) bool {
		state[t] = inStack
		stack = append(stack, t)
		for _, next := range edges[t] {
			switch state[next] {
			case inStack:
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == next {
						return true
					}
				}
				return true
			case unvisited:
				if visit(next) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[t] = done
		return false
	}
	// Deterministic iteration: order roots by transaction id.
	roots := make([]*TxState, 0, len(edges))
	//rtlint:allow maprange roots is id-sorted by sortTxByID below before iteration
	for t := range edges {
		roots = append(roots, t)
	}
	sortTxByID(roots)
	for _, t := range roots {
		if state[t] == unvisited && visit(t) {
			return cycle
		}
	}
	return nil
}

// holdersConflict reports whether any holder other than tx is
// incompatible with mode.
func holdersConflict(e *lockEntry, tx *TxState, mode Mode) bool {
	for i := range e.holders {
		h := &e.holders[i]
		if h.tx == tx {
			continue
		}
		if !compatible(h.mode, mode) {
			return true
		}
	}
	return false
}

// admissible reports whether a brand-new request may be granted
// immediately, respecting the queue policy's fairness rule.
func (m *TwoPL) admissible(e *lockEntry, tx *TxState, mode Mode) bool {
	if holdersConflict(e, tx, mode) {
		return false
	}
	switch m.policy {
	case QueueFIFO:
		// Never jump a non-empty queue.
		return len(e.queue) == 0
	case QueuePriority:
		// May be granted ahead of strictly lower-priority waiters
		// only.
		for _, w := range e.queue {
			if w.tx.Eff().Higher(tx.Eff()) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (m *TwoPL) grant(e *lockEntry, tx *TxState, obj ObjectID, mode Mode) {
	e.setHolder(tx, mode)
	tx.setHeld(obj, mode)
	m.pr.emitGrant(m.k, 0, tx, obj, mode)
}

// processQueue grants the maximal policy-ordered prefix of obj's queue
// and, under inheritance, re-blames the waiters that remain blocked.
func (m *TwoPL) processQueue(obj ObjectID) {
	e := m.table.at(obj)
	if e == nil {
		return
	}
	m.orderQueue(e)
	granted := 0
	for _, w := range e.queue {
		if holdersConflict(e, w.tx, w.mode) {
			break
		}
		m.grant(e, w.tx, obj, w.mode)
		if m.inherit {
			m.graph.clear(w.tx)
		}
		w.tok.Wake(nil)
		granted++
	}
	e.queue = e.queue[granted:]
	if m.inherit {
		for _, w := range e.queue {
			blamed := m.blameFor(e, w)
			m.pr.emitBlame(m.k, 0, w.tx, obj, blamed, false)
			m.graph.setBlame(w.tx, blamed)
		}
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		m.table.drop(e)
	}
}

// orderQueue sorts the wait queue per policy: FIFO by arrival sequence,
// priority by effective priority (ties by sequence). Effective priorities
// can change while queued (inheritance), so ordering happens at grant
// time rather than insert time.
func (m *TwoPL) orderQueue(e *lockEntry) {
	switch m.policy {
	case QueueFIFO:
		sortWaitersBySeq(e.queue)
	case QueuePriority:
		sortWaitersByPrio(e.queue)
	}
}

// blameFor computes the transactions responsible for w's wait: the
// conflicting holders, or, when the wait is purely queue-order induced,
// the conflicting waiters ahead of w.
func (m *TwoPL) blameFor(e *lockEntry, w *lockWaiter) []*TxState {
	var blamed []*TxState
	for i := range e.holders {
		h := &e.holders[i]
		if h.tx != w.tx && !compatible(h.mode, w.mode) {
			blamed = append(blamed, h.tx)
		}
	}
	if len(blamed) > 0 {
		sortTxByID(blamed)
		return blamed
	}
	for _, other := range e.queue {
		if other == w {
			continue
		}
		if other.seq < w.seq && !compatible(other.mode, w.mode) {
			blamed = append(blamed, other.tx)
		}
	}
	sortTxByID(blamed)
	return blamed
}

func (m *TwoPL) dropWaiter(e *lockEntry, w *lockWaiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	if m.inherit {
		m.graph.clear(w.tx)
	}
	// Removing a waiter can unblock the queue (e.g. an aborted
	// upgrader was at the head).
	m.processQueue(w.obj)
}
