package core

import (
	"sort"

	"rtlock/internal/sim"
)

// QueuePolicy orders a lock's wait queue.
type QueuePolicy int

// Queue policies for the two-phase locking family.
const (
	// QueueFIFO serves lock waiters in arrival order and never lets a
	// new request jump a non-empty queue (protocol L).
	QueueFIFO QueuePolicy = iota + 1
	// QueuePriority serves waiters in effective-priority order and
	// lets a new request be granted ahead of lower-priority waiters
	// (protocol P, and the base of the priority-inheritance variant).
	QueuePriority
)

// TwoPL is the two-phase locking family: protocol L (FIFO, no priority),
// protocol P (priority-ordered queues), and the basic priority
// inheritance protocol of §3.1 (priority queues plus inheritance by
// conflicting lock holders). Two-phase locking can deadlock; in the
// paper's experiments deadlocked transactions simply miss their hard
// deadlines and are aborted, which breaks the cycle. FindDeadlock exposes
// waits-for cycle detection for tests and for optional detection.
type TwoPL struct {
	k       *sim.Kernel
	policy  QueuePolicy
	inherit bool
	detect  bool
	graph   *inheritGraph
	entries map[ObjectID]*lockEntry
	seq     uint64
	name    string

	// DeadlocksResolved counts waits-for cycles broken by the
	// detection variant.
	DeadlocksResolved int
}

var _ Manager = (*TwoPL)(nil)

type lockEntry struct {
	holders map[*TxState]Mode
	queue   []*lockWaiter
}

type lockWaiter struct {
	tx   *TxState
	obj  ObjectID
	mode Mode
	tok  *sim.Token
	seq  uint64
}

// NewTwoPL returns protocol L: plain two-phase locking with FIFO queues
// and no priority support.
func NewTwoPL(k *sim.Kernel) *TwoPL {
	return &TwoPL{k: k, policy: QueueFIFO, entries: make(map[ObjectID]*lockEntry), name: "2PL"}
}

// NewTwoPLPriority returns protocol P: two-phase locking with
// priority-ordered wait queues.
func NewTwoPLPriority(k *sim.Kernel) *TwoPL {
	return &TwoPL{k: k, policy: QueuePriority, entries: make(map[ObjectID]*lockEntry), name: "2PL-P"}
}

// NewTwoPLInherit returns two-phase locking with basic priority
// inheritance (§3.1): a holder that blocks higher-priority transactions
// executes at the highest priority of the transactions it blocks.
// Blocking chains are still possible; the ceiling protocol exists to
// bound them.
func NewTwoPLInherit(k *sim.Kernel) *TwoPL {
	return &TwoPL{
		k:       k,
		policy:  QueuePriority,
		inherit: true,
		graph:   newInheritGraph(),
		entries: make(map[ObjectID]*lockEntry),
		name:    "2PL-PI",
	}
}

// NewTwoPLDetect returns two-phase locking with priority queues and
// waits-for deadlock detection: whenever a new wait closes a cycle, the
// lowest-priority transaction on the cycle is aborted (to restart) — the
// conventional database resolution the paper's model omits in favor of
// letting deadline expiry break cycles. It exists as an ablation of that
// choice.
func NewTwoPLDetect(k *sim.Kernel) *TwoPL {
	return &TwoPL{
		k:       k,
		policy:  QueuePriority,
		detect:  true,
		entries: make(map[ObjectID]*lockEntry),
		name:    "2PL-DD",
	}
}

// Name implements Manager.
func (m *TwoPL) Name() string { return m.name }

// Register implements Manager. The 2PL family needs no a-priori access
// set knowledge.
func (m *TwoPL) Register(tx *TxState) {}

// Unregister implements Manager.
func (m *TwoPL) Unregister(tx *TxState) {}

// Acquire implements Manager.
func (m *TwoPL) Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error {
	emitRequest(m.k, 0, tx, obj, mode)
	if held, ok := tx.held[obj]; ok && (held == Write || mode == Read) {
		emitGrant(m.k, 0, tx, obj, mode)
		return nil
	}
	e := m.entry(obj)
	if m.admissible(e, tx, mode) {
		m.grant(e, tx, obj, mode)
		return nil
	}
	m.seq++
	w := &lockWaiter{tx: tx, obj: obj, mode: mode, tok: &sim.Token{}, seq: m.seq}
	e.queue = append(e.queue, w)
	blamed := m.blameFor(e, w)
	emitBlock(m.k, 0, tx, obj, blamed, false)
	tx.noteBlocked(m.k.Now(), blamed)
	if m.inherit {
		m.graph.setBlame(tx, blamed)
	}
	if m.detect {
		if cycle := m.FindDeadlock(); len(cycle) > 0 {
			m.DeadlocksResolved++
			victim := lowestPriority(cycle)
			emitWound(m.k, 0, victim, tx)
			if victim == tx {
				m.dropWaiter(e, w)
				observeUnblocked(m.k, tx)
				return ErrRestart
			}
			victim.RequestWound(ErrRestart)
		}
	}
	w.tok.OnCancel = func() { m.dropWaiter(e, w) }
	err := p.Park(w.tok)
	observeUnblocked(m.k, tx)
	return err
}

// lowestPriority picks the deadlock victim: the least urgent transaction
// on the cycle, ties broken by id for determinism.
func lowestPriority(cycle []*TxState) *TxState {
	victim := cycle[0]
	for _, t := range cycle[1:] {
		if victim.Eff().Higher(t.Eff()) || victim.Eff() == t.Eff() && t.ID > victim.ID {
			victim = t
		}
	}
	return victim
}

// ReleaseAll implements Manager.
func (m *TwoPL) ReleaseAll(tx *TxState) {
	if len(tx.held) == 0 {
		return
	}
	affected := make([]ObjectID, 0, len(tx.held))
	for obj := range tx.held {
		affected = append(affected, obj)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	for _, obj := range affected {
		delete(tx.held, obj)
		emitRelease(m.k, 0, tx, obj)
		e := m.entries[obj]
		if e == nil {
			continue
		}
		delete(e.holders, tx)
	}
	if m.inherit {
		m.graph.dropHolder(tx)
	}
	for _, obj := range affected {
		m.processQueue(obj)
	}
}

// HeldLocks reports how many objects are currently locked (for tests).
func (m *TwoPL) HeldLocks() int {
	n := 0
	for _, e := range m.entries {
		if len(e.holders) > 0 {
			n++
		}
	}
	return n
}

// Waiting reports how many transactions are parked in lock queues.
func (m *TwoPL) Waiting() int {
	n := 0
	for _, e := range m.entries {
		n += len(e.queue)
	}
	return n
}

// FindDeadlock returns the transactions on one waits-for cycle, or nil if
// the lock table is deadlock-free right now. The waits-for relation
// follows each waiter's current blame set.
func (m *TwoPL) FindDeadlock() []*TxState {
	// Build edges in object order. Each waiter sits in exactly one
	// queue, so the edge sets would come out equal either way, but map
	// order here would still decide edge-slice ordering if a transaction
	// ever waited twice — sort instead of relying on that invariant.
	objs := make([]ObjectID, 0, len(m.entries))
	for obj := range m.entries {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	edges := make(map[*TxState][]*TxState)
	for _, obj := range objs {
		e := m.entries[obj]
		for _, w := range e.queue {
			edges[w.tx] = append(edges[w.tx], m.blameFor(e, w)...)
		}
	}
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[*TxState]int)
	var stack []*TxState
	var cycle []*TxState
	var visit func(t *TxState) bool
	visit = func(t *TxState) bool {
		state[t] = inStack
		stack = append(stack, t)
		for _, next := range edges[t] {
			switch state[next] {
			case inStack:
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == next {
						return true
					}
				}
				return true
			case unvisited:
				if visit(next) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[t] = done
		return false
	}
	// Deterministic iteration: order roots by transaction id.
	roots := make([]*TxState, 0, len(edges))
	for t := range edges {
		roots = append(roots, t)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })
	for _, t := range roots {
		if state[t] == unvisited && visit(t) {
			return cycle
		}
	}
	return nil
}

func (m *TwoPL) entry(obj ObjectID) *lockEntry {
	e, ok := m.entries[obj]
	if !ok {
		e = &lockEntry{holders: make(map[*TxState]Mode)}
		m.entries[obj] = e
	}
	return e
}

// holdersConflict reports whether any holder other than tx is
// incompatible with mode.
func holdersConflict(e *lockEntry, tx *TxState, mode Mode) bool {
	for h, hm := range e.holders {
		if h == tx {
			continue
		}
		if !compatible(hm, mode) {
			return true
		}
	}
	return false
}

// admissible reports whether a brand-new request may be granted
// immediately, respecting the queue policy's fairness rule.
func (m *TwoPL) admissible(e *lockEntry, tx *TxState, mode Mode) bool {
	if holdersConflict(e, tx, mode) {
		return false
	}
	switch m.policy {
	case QueueFIFO:
		// Never jump a non-empty queue.
		return len(e.queue) == 0
	case QueuePriority:
		// May be granted ahead of strictly lower-priority waiters
		// only.
		for _, w := range e.queue {
			if w.tx.Eff().Higher(tx.Eff()) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (m *TwoPL) grant(e *lockEntry, tx *TxState, obj ObjectID, mode Mode) {
	if cur, ok := e.holders[tx]; !ok || mode == Write && cur == Read {
		e.holders[tx] = mode
	}
	if cur, ok := tx.held[obj]; !ok || mode == Write && cur == Read {
		tx.held[obj] = mode
	}
	emitGrant(m.k, 0, tx, obj, mode)
}

// processQueue grants the maximal policy-ordered prefix of obj's queue
// and, under inheritance, re-blames the waiters that remain blocked.
func (m *TwoPL) processQueue(obj ObjectID) {
	e := m.entries[obj]
	if e == nil {
		return
	}
	m.orderQueue(e)
	granted := 0
	for _, w := range e.queue {
		if holdersConflict(e, w.tx, w.mode) {
			break
		}
		m.grant(e, w.tx, obj, w.mode)
		if m.inherit {
			m.graph.clear(w.tx)
		}
		w.tok.Wake(nil)
		granted++
	}
	e.queue = e.queue[granted:]
	if m.inherit {
		for _, w := range e.queue {
			blamed := m.blameFor(e, w)
			emitBlame(m.k, 0, w.tx, obj, blamed, false)
			m.graph.setBlame(w.tx, blamed)
		}
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(m.entries, obj)
	}
}

// orderQueue sorts the wait queue per policy: FIFO by arrival sequence,
// priority by effective priority (ties by sequence). Effective priorities
// can change while queued (inheritance), so ordering happens at grant
// time rather than insert time.
func (m *TwoPL) orderQueue(e *lockEntry) {
	switch m.policy {
	case QueueFIFO:
		sort.SliceStable(e.queue, func(i, j int) bool { return e.queue[i].seq < e.queue[j].seq })
	case QueuePriority:
		sort.SliceStable(e.queue, func(i, j int) bool {
			a, b := e.queue[i], e.queue[j]
			if a.tx.Eff() != b.tx.Eff() {
				return a.tx.Eff().Higher(b.tx.Eff())
			}
			return a.seq < b.seq
		})
	}
}

// blameFor computes the transactions responsible for w's wait: the
// conflicting holders, or, when the wait is purely queue-order induced,
// the conflicting waiters ahead of w.
func (m *TwoPL) blameFor(e *lockEntry, w *lockWaiter) []*TxState {
	var blamed []*TxState
	for h, hm := range e.holders {
		if h != w.tx && !compatible(hm, w.mode) {
			blamed = append(blamed, h)
		}
	}
	if len(blamed) > 0 {
		sort.Slice(blamed, func(i, j int) bool { return blamed[i].ID < blamed[j].ID })
		return blamed
	}
	for _, other := range e.queue {
		if other == w {
			continue
		}
		if other.seq < w.seq && !compatible(other.mode, w.mode) {
			blamed = append(blamed, other.tx)
		}
	}
	sort.Slice(blamed, func(i, j int) bool { return blamed[i].ID < blamed[j].ID })
	return blamed
}

func (m *TwoPL) dropWaiter(e *lockEntry, w *lockWaiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	if m.inherit {
		m.graph.clear(w.tx)
	}
	// Removing a waiter can unblock the queue (e.g. an aborted
	// upgrader was at the head).
	m.processQueue(w.obj)
}
