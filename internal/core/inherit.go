package core

import "sort"

// inheritGraph tracks which transactions are blocked by which lock
// holders and propagates priority inheritance along the (possibly
// transitive) blocking chain: a holder executes at the highest effective
// priority of the transactions it blocks, and if the holder is itself
// blocked, its own blockers inherit in turn.
//
// Edge sets are kept as slices sorted by transaction id. The sorted order
// is not a luxury: the recompute walk cuts waits-for cycles with a
// visited set, so traversal order is observable (it decides where a cycle
// is cut and in which order effective priorities move, which reaches CPU
// requeueing). The adjacency lives directly on TxState (igBlockedOn /
// igWaiters) rather than in pointer-keyed maps: every transaction state
// belongs to exactly one manager — distributed runs give each site's
// cohort its own TxState — and the graph's edge updates were the hottest
// map traffic in exploration profiles.
type inheritGraph struct {
	// freeSets recycles blame-set slices; a slice is reachable only
	// through one transaction's igBlockedOn at a time, so reuse cannot
	// alias.
	freeSets [][]*TxState
	// visited is the reused recursion guard for recompute (blocking
	// chains are short; linear scan beats a map).
	visited []*TxState
}

func newInheritGraph() *inheritGraph {
	return &inheritGraph{}
}

func (g *inheritGraph) getSet() []*TxState {
	if n := len(g.freeSets); n > 0 {
		s := g.freeSets[n-1]
		g.freeSets[n-1] = nil
		g.freeSets = g.freeSets[:n-1]
		return s[:0]
	}
	return nil
}

func (g *inheritGraph) putSet(s []*TxState) {
	if s == nil {
		return
	}
	for i := range s {
		s[i] = nil
	}
	g.freeSets = append(g.freeSets, s[:0])
}

// insertTx adds t to an id-sorted set, keeping order; no-op if present.
func insertTx(s []*TxState, t *TxState) []*TxState {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= t.ID })
	for j := i; j < len(s) && s[j].ID == t.ID; j++ {
		if s[j] == t {
			return s
		}
	}
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = t
	return s
}

// deleteTx removes t from an id-sorted set, keeping order.
func deleteTx(s []*TxState, t *TxState) []*TxState {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= t.ID })
	for ; i < len(s) && s[i].ID == t.ID; i++ {
		if s[i] == t {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			return s[:len(s)-1]
		}
	}
	return s
}

// setBlame replaces w's blame set with holders and recomputes effective
// priorities of everyone affected.
func (g *inheritGraph) setBlame(w *TxState, holders []*TxState) {
	old := w.igBlockedOn
	for _, h := range old {
		h.igWaiters = deleteTx(h.igWaiters, w)
	}
	w.igBlockedOn = nil
	if len(holders) > 0 {
		set := g.getSet()
		for _, h := range holders {
			if h == w {
				continue
			}
			set = insertTx(set, h)
			h.igWaiters = insertTx(h.igWaiters, w)
		}
		w.igBlockedOn = set
		// Recompute in id order (the set is id-sorted): the propagation
		// below cuts cycles with a visited set, so traversal order is
		// observable.
		for _, h := range set {
			g.recompute(h, false)
		}
	}
	for _, h := range old {
		g.recompute(h, false)
	}
	g.putSet(old)
}

// clear removes w from the graph entirely (granted, aborted, or departed)
// and recomputes the priorities of its former blockers.
func (g *inheritGraph) clear(w *TxState) {
	old := w.igBlockedOn
	for _, h := range old {
		h.igWaiters = deleteTx(h.igWaiters, w)
	}
	w.igBlockedOn = nil
	for _, h := range old {
		g.recompute(h, false)
	}
	g.putSet(old)
}

// dropHolder removes every blame edge pointing at h (h released its
// locks) and sheds h's inherited priority. The emptied waiter slice
// stays on h, keeping its capacity for the next blocking episode.
func (g *inheritGraph) dropHolder(h *TxState) {
	ws := h.igWaiters
	for _, w := range ws {
		w.igBlockedOn = deleteTx(w.igBlockedOn, h)
	}
	for i := range ws {
		ws[i] = nil
	}
	h.igWaiters = ws[:0]
	g.recompute(h, false)
}

// recompute re-derives h's effective priority from its waiters and
// propagates up the blocking chain. The visited set guards against
// waits-for cycles (two-phase locking can deadlock; inheritance must not
// loop forever when it does). nested is false at the entry point, which
// resets the shared visited scratch.
func (g *inheritGraph) recompute(h *TxState, nested bool) {
	if !nested {
		for i := range g.visited {
			g.visited[i] = nil
		}
		g.visited = g.visited[:0]
	}
	for _, v := range g.visited {
		if v == h {
			return
		}
	}
	g.visited = append(g.visited, h)
	eff := h.Base
	// Folding Max over the waiter set is order-independent.
	for _, w := range h.igWaiters {
		eff = eff.Max(w.Eff())
	}
	if eff == h.Eff() {
		return
	}
	h.setEff(eff)
	// The holder's new priority may need to flow to whoever blocks it.
	// Recurse in id order (the set is id-sorted): the shared visited set
	// makes traversal order observable at waits-for cycles.
	for _, b := range h.igBlockedOn {
		g.recompute(b, true)
	}
}
