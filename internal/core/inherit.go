package core

import "sort"

// inheritGraph tracks which transactions are blocked by which lock
// holders and propagates priority inheritance along the (possibly
// transitive) blocking chain: a holder executes at the highest effective
// priority of the transactions it blocks, and if the holder is itself
// blocked, its own blockers inherit in turn.
type inheritGraph struct {
	// blockedOn[w] is the set of holders currently blamed for w's wait.
	blockedOn map[*TxState]map[*TxState]struct{}
	// waiters[h] is the inverse: transactions currently blocked by h.
	waiters map[*TxState]map[*TxState]struct{}
}

func newInheritGraph() *inheritGraph {
	return &inheritGraph{
		blockedOn: make(map[*TxState]map[*TxState]struct{}),
		waiters:   make(map[*TxState]map[*TxState]struct{}),
	}
}

// setBlame replaces w's blame set with holders and recomputes effective
// priorities of everyone affected.
func (g *inheritGraph) setBlame(w *TxState, holders []*TxState) {
	old := g.blockedOn[w]
	g.clearEdges(w)
	if len(holders) > 0 {
		set := make(map[*TxState]struct{}, len(holders))
		for _, h := range holders {
			if h == w {
				continue
			}
			set[h] = struct{}{}
			ws, ok := g.waiters[h]
			if !ok {
				ws = make(map[*TxState]struct{})
				g.waiters[h] = ws
			}
			ws[w] = struct{}{}
		}
		g.blockedOn[w] = set
		// Recompute in id order: the propagation below cuts cycles with
		// a visited set, so traversal order is observable (it decides
		// where a waits-for cycle is cut and in which order effective
		// priorities move, which reaches CPU requeueing).
		for _, h := range sortedTxSet(set) {
			g.recompute(h, nil)
		}
	}
	for _, h := range sortedTxSet(old) {
		g.recompute(h, nil)
	}
}

// sortedTxSet flattens a transaction set into id order, keeping every
// graph walk deterministic.
func sortedTxSet(set map[*TxState]struct{}) []*TxState {
	out := make([]*TxState, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// clear removes w from the graph entirely (granted, aborted, or departed)
// and recomputes the priorities of its former blockers.
func (g *inheritGraph) clear(w *TxState) {
	old := g.blockedOn[w]
	g.clearEdges(w)
	for _, h := range sortedTxSet(old) {
		g.recompute(h, nil)
	}
}

// clearEdges removes w's outgoing blame edges without recomputation.
func (g *inheritGraph) clearEdges(w *TxState) {
	for h := range g.blockedOn[w] {
		delete(g.waiters[h], w)
		if len(g.waiters[h]) == 0 {
			delete(g.waiters, h)
		}
	}
	delete(g.blockedOn, w)
}

// dropHolder removes every blame edge pointing at h (h released its
// locks) and sheds h's inherited priority.
func (g *inheritGraph) dropHolder(h *TxState) {
	for w := range g.waiters[h] {
		delete(g.blockedOn[w], h)
		if len(g.blockedOn[w]) == 0 {
			delete(g.blockedOn, w)
		}
	}
	delete(g.waiters, h)
	g.recompute(h, nil)
}

// recompute re-derives h's effective priority from its waiters and
// propagates up the blocking chain. The visited set guards against
// waits-for cycles (two-phase locking can deadlock; inheritance must not
// loop forever when it does).
func (g *inheritGraph) recompute(h *TxState, visited map[*TxState]struct{}) {
	if visited == nil {
		visited = make(map[*TxState]struct{})
	}
	if _, seen := visited[h]; seen {
		return
	}
	visited[h] = struct{}{}
	eff := h.Base
	// Folding Max over the waiter set is order-independent.
	//rtlint:allow maprange commutative Max fold with no side effects
	for w := range g.waiters[h] {
		eff = eff.Max(w.Eff())
	}
	if eff == h.Eff() {
		return
	}
	h.setEff(eff)
	// The holder's new priority may need to flow to whoever blocks it.
	// Recurse in id order: the shared visited set makes traversal order
	// observable at waits-for cycles.
	for _, b := range sortedTxSet(g.blockedOn[h]) {
		g.recompute(b, visited)
	}
}
