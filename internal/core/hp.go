package core

import (
	"rtlock/internal/sim"
)

// TwoPLHP is two-phase locking with the High-Priority conflict-resolution
// scheme of Abbott and Garcia-Molina ([Abb88] in the paper): when a
// transaction requests a lock held by strictly lower-priority
// transactions, the holders are aborted (wounded) and restarted rather
// than the requester waiting behind them. Higher- or equal-priority
// holders block the requester as usual, with priority-ordered queues.
//
// Wounding guarantees the highest-priority transaction never waits for a
// lower-priority one and makes deadlock impossible among transactions
// with distinct priorities (every wait is toward higher priority), at
// the price of wasted and redone work — the trade-off the paper's §5
// raises when discussing preemption for real-time transactions.
type TwoPLHP struct {
	k     *sim.Kernel
	pr    lockProbes
	table lockTable
	seq   uint64

	// Wounds counts holder aborts issued, for reports and tests.
	Wounds int
}

var _ Manager = (*TwoPLHP)(nil)

// NewTwoPLHP returns the High-Priority scheme.
func NewTwoPLHP(k *sim.Kernel) *TwoPLHP {
	return &TwoPLHP{k: k, pr: newLockProbes(k)}
}

// Name implements Manager.
func (m *TwoPLHP) Name() string { return "2PL-HP" }

// Register implements Manager.
func (m *TwoPLHP) Register(tx *TxState) {}

// Unregister implements Manager.
func (m *TwoPLHP) Unregister(tx *TxState) {}

// Acquire implements Manager.
//
//rtlint:allocfree
func (m *TwoPLHP) Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error {
	m.pr.emitRequest(m.k, 0, tx, obj, mode)
	if held, ok := tx.Holds(obj); ok && (held == Write || mode == Read) {
		m.pr.emitGrant(m.k, 0, tx, obj, mode)
		return nil
	}
	e := m.table.get(obj) //rtlint:allow allocfree inlined pool-miss &lockEntry literal from get's growth path
	conflicts := conflictingHolders(e, tx, mode)
	if len(conflicts) == 0 && m.admissible(e, tx) {
		m.grant(e, tx, obj, mode)
		return nil
	}
	// Wound every conflicting holder of strictly lower priority. If all
	// conflicts are wounded the lock arrives as soon as they unwind;
	// otherwise the requester waits behind the survivors.
	for _, h := range conflicts {
		if h.Eff().Lower(tx.Eff()) {
			m.Wounds++
			m.pr.emitWound(m.k, 0, h, tx)
			h.RequestWound(ErrRestart)
		}
	}
	m.seq++
	w := m.table.getWaiter() //rtlint:allow allocfree inlined pool-miss &lockWaiter literal from getWaiter's growth path
	w.owner = m
	w.tx, w.obj, w.mode, w.seq, w.e = tx, obj, mode, m.seq, e
	e.queue = append(e.queue, w)
	m.pr.emitBlock(m.k, 0, tx, obj, conflicts, false)
	tx.noteBlocked(m.k.Now(), conflicts) //rtlint:allow allocfree inlined lazy BlockedBy map, allocated once per TxState on its first block
	w.tok.SetCancel(lockWaiterCancel, w)
	err := p.Park(&w.tok)
	m.pr.observeUnblocked(m.k, tx)
	m.table.putWaiter(w)
	return err
}

// ReleaseAll implements Manager.
func (m *TwoPLHP) ReleaseAll(tx *TxState) {
	if len(tx.held) == 0 {
		return
	}
	// tx.held is sorted by object id, keeping release order
	// deterministic.
	for i := range tx.held {
		obj := tx.held[i].obj
		m.pr.emitRelease(m.k, 0, tx, obj)
		if e := m.table.at(obj); e != nil {
			e.removeHolder(tx)
		}
	}
	for i := range tx.held {
		m.processQueue(tx.held[i].obj)
	}
	tx.clearHeld()
}

// Waiting reports parked lock waiters, for tests.
func (m *TwoPLHP) Waiting() int {
	n := 0
	for _, e := range m.table.entries {
		if e != nil {
			n += len(e.queue)
		}
	}
	return n
}

// admissible: a new compatible request may jump only strictly
// lower-priority waiters.
func (m *TwoPLHP) admissible(e *lockEntry, tx *TxState) bool {
	for _, w := range e.queue {
		if w.tx.Eff().Higher(tx.Eff()) {
			return false
		}
	}
	return true
}

func (m *TwoPLHP) grant(e *lockEntry, tx *TxState, obj ObjectID, mode Mode) {
	e.setHolder(tx, mode)
	tx.setHeld(obj, mode)
	m.pr.emitGrant(m.k, 0, tx, obj, mode)
}

func (m *TwoPLHP) processQueue(obj ObjectID) {
	e := m.table.at(obj)
	if e == nil {
		return
	}
	sortWaitersByPrio(e.queue)
	granted := 0
	for _, w := range e.queue {
		if holdersConflict(e, w.tx, w.mode) {
			break
		}
		m.grant(e, w.tx, obj, w.mode)
		w.tok.Wake(nil)
		granted++
	}
	e.queue = e.queue[granted:]
	if len(e.holders) == 0 && len(e.queue) == 0 {
		m.table.drop(e)
	}
}

func (m *TwoPLHP) dropWaiter(e *lockEntry, w *lockWaiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	m.processQueue(w.obj)
}

// conflictingHolders lists holders (other than tx) incompatible with the
// requested mode, in deterministic order.
func conflictingHolders(e *lockEntry, tx *TxState, mode Mode) []*TxState {
	var out []*TxState
	for i := range e.holders {
		h := &e.holders[i]
		if h.tx != tx && !compatible(h.mode, mode) {
			out = append(out, h.tx)
		}
	}
	sortTxByID(out)
	return out
}
