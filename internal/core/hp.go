package core

import (
	"sort"

	"rtlock/internal/sim"
)

// TwoPLHP is two-phase locking with the High-Priority conflict-resolution
// scheme of Abbott and Garcia-Molina ([Abb88] in the paper): when a
// transaction requests a lock held by strictly lower-priority
// transactions, the holders are aborted (wounded) and restarted rather
// than the requester waiting behind them. Higher- or equal-priority
// holders block the requester as usual, with priority-ordered queues.
//
// Wounding guarantees the highest-priority transaction never waits for a
// lower-priority one and makes deadlock impossible among transactions
// with distinct priorities (every wait is toward higher priority), at
// the price of wasted and redone work — the trade-off the paper's §5
// raises when discussing preemption for real-time transactions.
type TwoPLHP struct {
	k       *sim.Kernel
	entries map[ObjectID]*lockEntry
	seq     uint64

	// Wounds counts holder aborts issued, for reports and tests.
	Wounds int
}

var _ Manager = (*TwoPLHP)(nil)

// NewTwoPLHP returns the High-Priority scheme.
func NewTwoPLHP(k *sim.Kernel) *TwoPLHP {
	return &TwoPLHP{k: k, entries: make(map[ObjectID]*lockEntry)}
}

// Name implements Manager.
func (m *TwoPLHP) Name() string { return "2PL-HP" }

// Register implements Manager.
func (m *TwoPLHP) Register(tx *TxState) {}

// Unregister implements Manager.
func (m *TwoPLHP) Unregister(tx *TxState) {}

// Acquire implements Manager.
func (m *TwoPLHP) Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error {
	emitRequest(m.k, 0, tx, obj, mode)
	if held, ok := tx.held[obj]; ok && (held == Write || mode == Read) {
		emitGrant(m.k, 0, tx, obj, mode)
		return nil
	}
	e := m.entry(obj)
	conflicts := conflictingHolders(e, tx, mode)
	if len(conflicts) == 0 && m.admissible(e, tx) {
		m.grant(e, tx, obj, mode)
		return nil
	}
	// Wound every conflicting holder of strictly lower priority. If all
	// conflicts are wounded the lock arrives as soon as they unwind;
	// otherwise the requester waits behind the survivors.
	for _, h := range conflicts {
		if h.Eff().Lower(tx.Eff()) {
			m.Wounds++
			emitWound(m.k, 0, h, tx)
			h.RequestWound(ErrRestart)
		}
	}
	m.seq++
	w := &lockWaiter{tx: tx, obj: obj, mode: mode, tok: &sim.Token{}, seq: m.seq}
	e.queue = append(e.queue, w)
	emitBlock(m.k, 0, tx, obj, conflicts, false)
	tx.noteBlocked(m.k.Now(), conflicts)
	w.tok.OnCancel = func() { m.dropWaiter(e, w) }
	err := p.Park(w.tok)
	observeUnblocked(m.k, tx)
	return err
}

// ReleaseAll implements Manager.
func (m *TwoPLHP) ReleaseAll(tx *TxState) {
	if len(tx.held) == 0 {
		return
	}
	affected := make([]ObjectID, 0, len(tx.held))
	for obj := range tx.held {
		affected = append(affected, obj)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	for _, obj := range affected {
		delete(tx.held, obj)
		emitRelease(m.k, 0, tx, obj)
		if e := m.entries[obj]; e != nil {
			delete(e.holders, tx)
		}
	}
	for _, obj := range affected {
		m.processQueue(obj)
	}
}

// Waiting reports parked lock waiters, for tests.
func (m *TwoPLHP) Waiting() int {
	n := 0
	for _, e := range m.entries {
		n += len(e.queue)
	}
	return n
}

func (m *TwoPLHP) entry(obj ObjectID) *lockEntry {
	e, ok := m.entries[obj]
	if !ok {
		e = &lockEntry{holders: make(map[*TxState]Mode)}
		m.entries[obj] = e
	}
	return e
}

// admissible: a new compatible request may jump only strictly
// lower-priority waiters.
func (m *TwoPLHP) admissible(e *lockEntry, tx *TxState) bool {
	for _, w := range e.queue {
		if w.tx.Eff().Higher(tx.Eff()) {
			return false
		}
	}
	return true
}

func (m *TwoPLHP) grant(e *lockEntry, tx *TxState, obj ObjectID, mode Mode) {
	if cur, ok := e.holders[tx]; !ok || mode == Write && cur == Read {
		e.holders[tx] = mode
	}
	if cur, ok := tx.held[obj]; !ok || mode == Write && cur == Read {
		tx.held[obj] = mode
	}
	emitGrant(m.k, 0, tx, obj, mode)
}

func (m *TwoPLHP) processQueue(obj ObjectID) {
	e := m.entries[obj]
	if e == nil {
		return
	}
	sort.SliceStable(e.queue, func(i, j int) bool {
		a, b := e.queue[i], e.queue[j]
		if a.tx.Eff() != b.tx.Eff() {
			return a.tx.Eff().Higher(b.tx.Eff())
		}
		return a.seq < b.seq
	})
	granted := 0
	for _, w := range e.queue {
		if holdersConflict(e, w.tx, w.mode) {
			break
		}
		m.grant(e, w.tx, obj, w.mode)
		w.tok.Wake(nil)
		granted++
	}
	e.queue = e.queue[granted:]
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(m.entries, obj)
	}
}

func (m *TwoPLHP) dropWaiter(e *lockEntry, w *lockWaiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	m.processQueue(w.obj)
}

// conflictingHolders lists holders (other than tx) incompatible with the
// requested mode, in deterministic order.
func conflictingHolders(e *lockEntry, tx *TxState, mode Mode) []*TxState {
	var out []*TxState
	for h, hm := range e.holders {
		if h != tx && !compatible(hm, mode) {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
