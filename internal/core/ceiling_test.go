package core

import (
	"errors"
	"testing"

	"rtlock/internal/sim"
)

func TestCeilingValues(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	hi := NewTxState(1, sim.Priority{Deadline: 10, TxID: 1}, nil)
	hi.ReadSet = []ObjectID{1}
	lo := NewTxState(2, sim.Priority{Deadline: 20, TxID: 2}, nil)
	lo.WriteSet = []ObjectID{1}
	m.Register(hi)
	m.Register(lo)
	if got := m.AbsCeiling(1); got != hi.Base {
		t.Fatalf("AbsCeiling = %v, want highest reader/writer %v", got, hi.Base)
	}
	if got := m.WriteCeiling(1); got != lo.Base {
		t.Fatalf("WriteCeiling = %v, want highest writer %v", got, lo.Base)
	}
	if got := m.RWCeiling(1); got != sim.MinPriority {
		t.Fatalf("RWCeiling of unlocked object = %v, want MinPriority", got)
	}
	m.Unregister(hi)
	if got := m.AbsCeiling(1); got != lo.Base {
		t.Fatalf("AbsCeiling after unregister = %v, want %v", got, lo.Base)
	}
}

func TestCeilingRWSetDynamically(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	reader := &scriptTx{id: 1, deadline: 10, steps: []step{{obj: 1, mode: Read, work: 20 * sim.Millisecond}}}
	writer := &scriptTx{id: 2, deadline: 20, pause: 40 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 20 * sim.Millisecond}}}
	var readLocked, writeLocked sim.Priority
	k.At(sim.Time(5*sim.Millisecond), func() { readLocked = m.RWCeiling(1) })
	k.At(sim.Time(45*sim.Millisecond), func() { writeLocked = m.RWCeiling(1) })
	runScript(t, k, m, []*scriptTx{reader, writer})
	// While read-locked the rw ceiling is the write ceiling (writer's
	// priority); while write-locked it is the absolute ceiling (the
	// reader has departed by 45ms, so it is the writer's own priority).
	if readLocked != (sim.Priority{Deadline: 20, TxID: 2}) {
		t.Fatalf("rw ceiling while read-locked = %v, want write ceiling", readLocked)
	}
	if writeLocked != (sim.Priority{Deadline: 20, TxID: 2}) {
		t.Fatalf("rw ceiling while write-locked = %v, want absolute ceiling", writeLocked)
	}
}

// TestCeilingBlockingUnlockedObject reproduces the paper's §3.2 example:
// the protocol may forbid locking an unlocked object — the "insurance
// premium" that buys deadlock freedom and block-at-most-once.
func TestCeilingBlockingUnlockedObject(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	// t3 (lowest priority) locks O3, whose ceiling is t1's priority
	// because t1 accesses O3. t2 (middle priority) then tries to lock a
	// DIFFERENT, unlocked object O2 and must be ceiling-blocked.
	t1 := &scriptTx{id: 1, deadline: 1, pause: 100 * sim.Millisecond, steps: []step{{obj: 3, mode: Write, work: 5 * sim.Millisecond}}}
	t2 := &scriptTx{id: 2, deadline: 2, pause: 10 * sim.Millisecond, steps: []step{{obj: 2, mode: Write, work: 5 * sim.Millisecond}}}
	t3 := &scriptTx{id: 3, deadline: 3, steps: []step{{obj: 3, mode: Write, work: 50 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{t1, t2, t3})
	if !t2.done {
		t.Fatalf("t2 stuck: %v", t2.err)
	}
	// t2 was blocked even though O2 was unlocked.
	if t2.st.BlockedCount == 0 {
		t.Fatal("t2 was not ceiling-blocked")
	}
	if m.CeilingBlocks == 0 {
		t.Fatal("ceiling-block counter did not move")
	}
	// t2 resumed only after t3 released at 50ms.
	if t2.doneAt != sim.Time(55*sim.Millisecond) {
		t.Fatalf("t2 done at %v, want 55ms", t2.doneAt)
	}
}

func TestCeilingInheritance(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	t3 := &scriptTx{id: 3, deadline: 30, steps: []step{{obj: 3, mode: Write, work: 50 * sim.Millisecond}}}
	t2 := &scriptTx{id: 2, deadline: 20, start: 10 * sim.Millisecond, steps: []step{{obj: 2, mode: Write, work: 5 * sim.Millisecond}}}
	t1 := &scriptTx{id: 1, deadline: 10, start: 20 * sim.Millisecond, steps: []step{{obj: 3, mode: Write, work: 5 * sim.Millisecond}}}
	var t3Eff sim.Priority
	k.At(sim.Time(30*sim.Millisecond), func() { t3Eff = t3.st.Eff() })
	runScript(t, k, m, []*scriptTx{t1, t2, t3})
	// At 30ms both t1 and t2 are blocked by t3; t3 inherits the highest.
	want := sim.Priority{Deadline: 10, TxID: 1}
	if t3Eff != want {
		t.Fatalf("t3 effective priority = %v, want inherited %v", t3Eff, want)
	}
	if t3.st.Eff() != t3.st.Base {
		t.Fatalf("t3 did not shed inherited priority after release: %v", t3.st.Eff())
	}
}

// TestCeilingBlockAtMostOnce reproduces §3.1's chained-blocking scenario
// and shows PCP bounds it: t1 needs O1 and O2, held by lower-priority t2
// and t3. Under basic inheritance t1 would be blocked twice; under the
// ceiling protocol at most once.
func TestCeilingBlockAtMostOnce(t *testing.T) {
	run := func(mgr func(*sim.Kernel) Manager) (*scriptTx, Manager) {
		k := sim.NewKernel()
		m := mgr(k)
		t3 := &scriptTx{id: 3, deadline: 30, steps: []step{{obj: 2, mode: Write, work: 60 * sim.Millisecond}}}
		t2 := &scriptTx{id: 2, deadline: 20, pause: 5 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 40 * sim.Millisecond}}}
		t1 := &scriptTx{id: 1, deadline: 10, pause: 10 * sim.Millisecond, steps: []step{
			{obj: 1, mode: Write, work: 5 * sim.Millisecond},
			{obj: 2, mode: Write, work: 5 * sim.Millisecond},
		}}
		runScript(t, k, m, []*scriptTx{t1, t2, t3})
		if !t1.done {
			t.Fatalf("t1 stuck: %v", t1.err)
		}
		return t1, m
	}

	pcpT1, _ := run(func(k *sim.Kernel) Manager { return NewCeiling(k) })
	if got := len(pcpT1.st.BlockedBy); got > 1 {
		t.Fatalf("PCP blocked t1 by %d distinct lower-priority transactions, want <= 1", got)
	}

	piT1, _ := run(func(k *sim.Kernel) Manager { return NewTwoPLInherit(k) })
	if got := len(piT1.st.BlockedBy); got != 2 {
		t.Fatalf("basic inheritance should chain-block t1 twice, got %d", got)
	}
}

// TestCeilingNoDeadlock uses the classic cross-order scenario that
// deadlocks 2PL and shows PCP completes it.
func TestCeilingNoDeadlock(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	a := &scriptTx{id: 1, deadline: 1, steps: []step{
		{obj: 1, mode: Write, work: 10 * sim.Millisecond},
		{obj: 2, mode: Write, work: 10 * sim.Millisecond},
	}}
	b := &scriptTx{id: 2, deadline: 2, start: 1 * sim.Millisecond, steps: []step{
		{obj: 2, mode: Write, work: 10 * sim.Millisecond},
		{obj: 1, mode: Write, work: 10 * sim.Millisecond},
	}}
	runScript(t, k, m, []*scriptTx{a, b})
	if !a.done || !b.done {
		t.Fatalf("PCP deadlocked: a=%v b=%v", a.done, b.done)
	}
}

func TestCeilingReadSharing(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	// Two readers of the same object, no writers anywhere: the rw
	// ceiling of the read-locked object is MinPriority (no writers), so
	// the second reader passes the test and shares.
	r1 := &scriptTx{id: 1, deadline: 10, steps: []step{{obj: 1, mode: Read, work: 20 * sim.Millisecond}}}
	r2 := &scriptTx{id: 2, deadline: 20, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Read, work: 20 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{r1, r2})
	if r2.doneAt != sim.Time(21*sim.Millisecond) {
		t.Fatalf("r2 done at %v, want 21ms (shared read)", r2.doneAt)
	}
	if r2.st.BlockedCount != 0 {
		t.Fatal("second reader should not block")
	}
}

func TestCeilingExclusiveNoSharing(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeilingExclusive(k)
	r1 := &scriptTx{id: 1, deadline: 10, steps: []step{{obj: 1, mode: Read, work: 20 * sim.Millisecond}}}
	r2 := &scriptTx{id: 2, deadline: 20, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Read, work: 20 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{r1, r2})
	if r2.doneAt != sim.Time(40*sim.Millisecond) {
		t.Fatalf("r2 done at %v, want 40ms (exclusive semantics serialize readers)", r2.doneAt)
	}
}

func TestCeilingWriterBlockedByReader(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	reader := &scriptTx{id: 1, deadline: 10, steps: []step{{obj: 1, mode: Read, work: 20 * sim.Millisecond}}}
	writer := &scriptTx{id: 2, deadline: 5, start: 1 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{reader, writer})
	if writer.doneAt != sim.Time(25*sim.Millisecond) {
		t.Fatalf("writer done at %v, want 25ms (waits for reader)", writer.doneAt)
	}
}

func TestCeilingUnregisterWakesWaiters(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	// A very high priority transaction registers (raising ceilings) but
	// never runs its steps until late; a holder plus the raised ceiling
	// block a middle transaction; when the high one departs, ceilings
	// drop. Scenario: t9 registered with write set {2}. t3 locks obj 2.
	// t2 requests obj 1 (unlocked): blocked because rw-ceiling(2) = t9's
	// priority. When t9 completes, ceilings drop but obj 2 is still
	// locked by t3 whose write ceiling is now t3's own... then the test
	// passes for t2 (its priority outranks t3's contribution).
	t9 := &scriptTx{id: 9, deadline: 1, steps: []step{{obj: 2, mode: Write, work: 1 * sim.Millisecond}}}
	t3 := &scriptTx{id: 3, deadline: 30, start: 2 * sim.Millisecond, steps: []step{{obj: 2, mode: Write, work: 100 * sim.Millisecond}}}
	t2 := &scriptTx{id: 2, deadline: 20, start: 3 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	// Keep t9 registered artificially long by giving it a long tail.
	t9.steps = append(t9.steps, step{obj: 2, mode: Write, work: 20 * sim.Millisecond})
	runScript(t, k, m, []*scriptTx{t9, t3, t2})
	if !t2.done {
		t.Fatalf("t2 stuck: %v", t2.err)
	}
	// t2 must finish before t3 releases at ~121ms: the departure of t9
	// at ~22ms lowers rw-ceiling(2) below t2's priority.
	if t2.doneAt >= t3.doneAt {
		t.Fatalf("t2 done at %v, not unblocked by t9's departure (t3 done %v)", t2.doneAt, t3.doneAt)
	}
}

func TestCeilingCancelBlockedWaiter(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	holder := &scriptTx{id: 2, deadline: 20, steps: []step{{obj: 1, mode: Write, work: 50 * sim.Millisecond}}}
	victim := &scriptTx{id: 1, deadline: 10, start: 5 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	errKill := errors.New("kill")
	var holderEffAfter sim.Priority
	k.At(sim.Time(20*sim.Millisecond), func() {
		victim.st.Proc.Interrupt(errKill)
	})
	k.At(sim.Time(21*sim.Millisecond), func() { holderEffAfter = holder.st.Eff() })
	runScript(t, k, m, []*scriptTx{holder, victim})
	if !errors.Is(victim.err, errKill) {
		t.Fatalf("victim err = %v", victim.err)
	}
	if holderEffAfter != holder.st.Base {
		t.Fatalf("holder kept inherited priority %v after waiter aborted", holderEffAfter)
	}
	if m.Waiting() != 0 {
		t.Fatalf("waiter leaked: %d", m.Waiting())
	}
}

func TestCeilingAcquireBeforeRegister(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	var got error
	k.Spawn("rogue", func(p *sim.Proc) {
		st := NewTxState(1, sim.Priority{Deadline: 1, TxID: 1}, p)
		got = m.Acquire(p, st, 1, Write)
	})
	k.Run()
	if got == nil {
		t.Fatal("Acquire before Register should fail")
	}
}

func TestCeilingUpgradeSoleHolder(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	up := &scriptTx{id: 1, deadline: 1, steps: []step{
		{obj: 1, mode: Read, work: 5 * sim.Millisecond},
		{obj: 1, mode: Write, work: 5 * sim.Millisecond},
	}}
	runScript(t, k, m, []*scriptTx{up})
	if !up.done {
		t.Fatalf("upgrade failed: %v", up.err)
	}
}

func TestCeilingUpgradeBlockedByCoReader(t *testing.T) {
	// A lower-priority transaction read-locks an object it also
	// intends to write; a higher-priority reader shares the lock (its
	// priority beats the write ceiling). The upgrade must then wait as
	// a DIRECT conflict: the ceiling test skips self-held objects, so
	// only the compatibility safety net blocks it, and the blame falls
	// on the co-reader.
	k := sim.NewKernel()
	m := NewCeiling(k)
	up := &scriptTx{id: 2, deadline: 20, steps: []step{
		{obj: 1, mode: Read, work: 2 * sim.Millisecond},
		{obj: 1, mode: Write, work: 2 * sim.Millisecond},
	}}
	coReader := &scriptTx{id: 1, deadline: 10, pause: sim.Millisecond,
		steps: []step{{obj: 1, mode: Read, work: 30 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{up, coReader})
	if !up.done {
		t.Fatalf("upgrader stuck: %v", up.err)
	}
	if !coReader.done {
		t.Fatalf("co-reader stuck: %v", coReader.err)
	}
	// The upgrade waits for the co-reader's release at 31ms.
	if up.doneAt != sim.Time(33*sim.Millisecond) {
		t.Fatalf("upgrader done at %v, want 33ms", up.doneAt)
	}
	if m.DirectBlocks != 1 {
		t.Fatalf("DirectBlocks = %d, want 1 (upgrade conflict)", m.DirectBlocks)
	}
}

func TestCeilingDirectBlockCounted(t *testing.T) {
	k := sim.NewKernel()
	m := NewCeiling(k)
	holder := &scriptTx{id: 2, deadline: 20, steps: []step{{obj: 1, mode: Write, work: 20 * sim.Millisecond}}}
	waiter := &scriptTx{id: 1, deadline: 10, start: 5 * sim.Millisecond, steps: []step{{obj: 1, mode: Write, work: 5 * sim.Millisecond}}}
	runScript(t, k, m, []*scriptTx{holder, waiter})
	if m.DirectBlocks != 1 {
		t.Fatalf("DirectBlocks = %d, want 1", m.DirectBlocks)
	}
}
