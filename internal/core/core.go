// Package core implements the real-time locking protocols the paper
// evaluates: two-phase locking without priority (protocol L), two-phase
// locking with priority mode (protocol P), two-phase locking with basic
// priority inheritance (§3.1), and the priority ceiling protocol (§3.2,
// protocol C) with write-, absolute-, and rw-priority ceilings, ceiling
// blocking, transitive priority inheritance, and the block-at-most-once
// and deadlock-freedom properties.
//
// The package is transaction-system agnostic: callers hand it a TxState
// per transaction (identity, assigned priority, declared read and write
// sets) and receive lock grants by parking the transaction's simulated
// process. Priority inheritance reaches the CPU scheduler through the
// TxState's OnPrioChange hook.
package core

import (
	"fmt"

	"rtlock/internal/sim"
)

// ObjectID names a data object (the paper's lockable granule).
type ObjectID int32

// Mode is a lock mode.
type Mode int

// Lock modes. Read locks are compatible with each other; write locks are
// exclusive.
const (
	Read Mode = iota + 1
	Write
)

// String renders the mode for traces.
func (m Mode) String() string {
	switch m {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compatible reports whether a lock held in mode held allows another
// transaction to acquire mode req.
func compatible(held, req Mode) bool { return held == Read && req == Read }

// Manager is a single-site concurrency-control protocol. The distributed
// managers in internal/dist wrap Managers per site or globally.
type Manager interface {
	// Name identifies the protocol in reports ("2PL", "2PL-P",
	// "2PL-PI", "PCP", "PCP-X").
	Name() string
	// Register declares a transaction and its read/write sets to the
	// protocol; the ceiling protocol derives object ceilings from
	// registered transactions. Register must precede the first Acquire.
	Register(tx *TxState)
	// Unregister removes a departed (committed or aborted)
	// transaction. The caller must release its locks first.
	Unregister(tx *TxState)
	// Acquire obtains obj in the given mode on behalf of tx, parking p
	// until the lock is granted. It returns nil on grant, or the
	// cancellation error if the wait was interrupted (deadline abort).
	// Re-acquiring a held lock (same or weaker mode) succeeds
	// immediately; Read→Write upgrades are honored when permissible.
	Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error
	// ReleaseAll releases every lock tx holds, sheds any inherited
	// priority, and wakes newly grantable waiters. Transactions follow
	// strict two-phase locking, releasing only at commit or abort.
	ReleaseAll(tx *TxState)
}

// TxState is the protocol-facing state of one transaction. States are
// pooled by the transaction system (one per in-flight attempt, recycled
// via ResetFor), so nothing may retain a *TxState past ReleaseAll +
// Unregister of the attempt that owns it.
//
//rtlint:pooled
type TxState struct {
	// ID is unique per run and breaks priority ties.
	ID int64
	// Base is the assigned priority (earliest deadline = highest). The
	// ceiling tests use Base; inheritance changes only Eff.
	Base sim.Priority
	// Proc is the simulated process executing the transaction.
	Proc *sim.Proc
	// ReadSet and WriteSet are the declared access sets, known at
	// arrival as in the paper's prototyping environment.
	ReadSet, WriteSet []ObjectID
	// OnPrioChange, if set, is invoked whenever the effective priority
	// changes, so the transaction layer can reprioritize the CPU.
	OnPrioChange func(eff sim.Priority)
	// Estimate is the transaction's total execution-time estimate
	// (size × per-object cost), used by the conditional-restart
	// policy to decide whether a requester can afford to wait for a
	// holder.
	Estimate sim.Duration

	// BlockedCount and BlockedTime accumulate lock-wait statistics for
	// the performance monitor.
	BlockedCount int
	BlockedTime  sim.Duration
	// BlockedBy records the distinct lower-priority transactions that
	// ever directly blocked this one; the ceiling protocol's
	// block-at-most-once property bounds its size. Allocated lazily on
	// the first qualifying block (most transactions are never blocked).
	BlockedBy map[int64]struct{}

	eff        sim.Priority
	held       []heldLock
	blockStart sim.Time
	blocked    bool
	wounded    error

	// igBlockedOn / igWaiters are this transaction's edges in its
	// manager's priority-inheritance graph (inherit.go), id-sorted. They
	// live here instead of in pointer-keyed maps because graph updates
	// are hot-path work and every TxState belongs to exactly one
	// manager (distributed sites build their own cohort states).
	igBlockedOn []*TxState
	igWaiters   []*TxState
}

// heldLock is one entry of a transaction's held-lock set, kept sorted by
// object id so release iteration is deterministic without per-release
// sorting. The sets are small (a transaction's access set), so lookups
// scan linearly.
type heldLock struct {
	obj  ObjectID
	mode Mode
}

// NewTxState returns transaction state with the given identity and
// assigned priority. Read and write sets may be filled in afterwards but
// before Register.
func NewTxState(id int64, base sim.Priority, p *sim.Proc) *TxState {
	return &TxState{
		ID:   id,
		Base: base,
		Proc: p,
		eff:  base,
	}
}

// ResetFor prepares a pooled transaction state for a fresh attempt,
// equivalent to NewTxState plus zeroed statistics. Only legal once the
// state has fully left its manager — released, unregistered, no parked
// waits — so the held-lock set and inheritance-graph edges are already
// empty and truncation just keeps their capacity.
func (t *TxState) ResetFor(id int64, base sim.Priority, p *sim.Proc) {
	t.ID = id
	t.Base = base
	t.Proc = p
	t.ReadSet = nil
	t.WriteSet = nil
	t.OnPrioChange = nil
	t.Estimate = 0
	t.BlockedCount = 0
	t.BlockedTime = 0
	clear(t.BlockedBy)
	t.eff = base
	t.held = t.held[:0]
	t.blockStart = 0
	t.blocked = false
	t.wounded = nil
	t.igBlockedOn = t.igBlockedOn[:0]
	t.igWaiters = t.igWaiters[:0]
}

// Eff returns the current effective (possibly inherited) priority.
func (t *TxState) Eff() sim.Priority { return t.eff }

// Holds reports the mode in which t holds obj, if any.
func (t *TxState) Holds(obj ObjectID) (Mode, bool) {
	for i := range t.held {
		if t.held[i].obj == obj {
			return t.held[i].mode, true
		}
	}
	return 0, false
}

// setHeld records obj as held in mode, inserting in object order or
// upgrading Read to Write; weaker re-acquisitions are ignored.
func (t *TxState) setHeld(obj ObjectID, mode Mode) {
	i := 0
	for i < len(t.held) && t.held[i].obj < obj {
		i++
	}
	if i < len(t.held) && t.held[i].obj == obj {
		if mode == Write && t.held[i].mode == Read {
			t.held[i].mode = Write
		}
		return
	}
	t.held = append(t.held, heldLock{})
	copy(t.held[i+1:], t.held[i:])
	t.held[i] = heldLock{obj: obj, mode: mode}
}

// clearHeld empties the held set (keeping its capacity for the next
// attempt that reuses this TxState).
func (t *TxState) clearHeld() { t.held = t.held[:0] }

// HeldCount returns the number of locks currently held.
func (t *TxState) HeldCount() int { return len(t.held) }

// WantsWrite reports whether obj is in the declared write set.
func (t *TxState) WantsWrite(obj ObjectID) bool {
	for _, o := range t.WriteSet {
		if o == obj {
			return true
		}
	}
	return false
}

// setEff updates the effective priority, notifying the owner on change.
func (t *TxState) setEff(p sim.Priority) {
	if t.eff == p {
		return
	}
	t.eff = p
	if t.OnPrioChange != nil {
		t.OnPrioChange(p)
	}
}

// noteBlocked starts the blocked-interval clock and charges the blame set.
func (t *TxState) noteBlocked(now sim.Time, blamed []*TxState) {
	t.BlockedCount++
	t.blockStart = now
	t.blocked = true
	for _, h := range blamed {
		if h.Base.Lower(t.Base) {
			if t.BlockedBy == nil {
				t.BlockedBy = make(map[int64]struct{})
			}
			t.BlockedBy[h.ID] = struct{}{}
		}
	}
}

// noteUnblocked stops the blocked-interval clock and returns the
// interval's length (zero when the transaction was not blocked).
func (t *TxState) noteUnblocked(now sim.Time) sim.Duration {
	if !t.blocked {
		return 0
	}
	t.blocked = false
	d := now.Sub(t.blockStart)
	t.BlockedTime += d
	return d
}
