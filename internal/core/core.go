// Package core implements the real-time locking protocols the paper
// evaluates: two-phase locking without priority (protocol L), two-phase
// locking with priority mode (protocol P), two-phase locking with basic
// priority inheritance (§3.1), and the priority ceiling protocol (§3.2,
// protocol C) with write-, absolute-, and rw-priority ceilings, ceiling
// blocking, transitive priority inheritance, and the block-at-most-once
// and deadlock-freedom properties.
//
// The package is transaction-system agnostic: callers hand it a TxState
// per transaction (identity, assigned priority, declared read and write
// sets) and receive lock grants by parking the transaction's simulated
// process. Priority inheritance reaches the CPU scheduler through the
// TxState's OnPrioChange hook.
package core

import (
	"fmt"

	"rtlock/internal/sim"
)

// ObjectID names a data object (the paper's lockable granule).
type ObjectID int32

// Mode is a lock mode.
type Mode int

// Lock modes. Read locks are compatible with each other; write locks are
// exclusive.
const (
	Read Mode = iota + 1
	Write
)

// String renders the mode for traces.
func (m Mode) String() string {
	switch m {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compatible reports whether a lock held in mode held allows another
// transaction to acquire mode req.
func compatible(held, req Mode) bool { return held == Read && req == Read }

// Manager is a single-site concurrency-control protocol. The distributed
// managers in internal/dist wrap Managers per site or globally.
type Manager interface {
	// Name identifies the protocol in reports ("2PL", "2PL-P",
	// "2PL-PI", "PCP", "PCP-X").
	Name() string
	// Register declares a transaction and its read/write sets to the
	// protocol; the ceiling protocol derives object ceilings from
	// registered transactions. Register must precede the first Acquire.
	Register(tx *TxState)
	// Unregister removes a departed (committed or aborted)
	// transaction. The caller must release its locks first.
	Unregister(tx *TxState)
	// Acquire obtains obj in the given mode on behalf of tx, parking p
	// until the lock is granted. It returns nil on grant, or the
	// cancellation error if the wait was interrupted (deadline abort).
	// Re-acquiring a held lock (same or weaker mode) succeeds
	// immediately; Read→Write upgrades are honored when permissible.
	Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error
	// ReleaseAll releases every lock tx holds, sheds any inherited
	// priority, and wakes newly grantable waiters. Transactions follow
	// strict two-phase locking, releasing only at commit or abort.
	ReleaseAll(tx *TxState)
}

// TxState is the protocol-facing state of one transaction.
type TxState struct {
	// ID is unique per run and breaks priority ties.
	ID int64
	// Base is the assigned priority (earliest deadline = highest). The
	// ceiling tests use Base; inheritance changes only Eff.
	Base sim.Priority
	// Proc is the simulated process executing the transaction.
	Proc *sim.Proc
	// ReadSet and WriteSet are the declared access sets, known at
	// arrival as in the paper's prototyping environment.
	ReadSet, WriteSet []ObjectID
	// OnPrioChange, if set, is invoked whenever the effective priority
	// changes, so the transaction layer can reprioritize the CPU.
	OnPrioChange func(eff sim.Priority)
	// Estimate is the transaction's total execution-time estimate
	// (size × per-object cost), used by the conditional-restart
	// policy to decide whether a requester can afford to wait for a
	// holder.
	Estimate sim.Duration

	// BlockedCount and BlockedTime accumulate lock-wait statistics for
	// the performance monitor.
	BlockedCount int
	BlockedTime  sim.Duration
	// BlockedBy records the distinct lower-priority transactions that
	// ever directly blocked this one; the ceiling protocol's
	// block-at-most-once property bounds its size.
	BlockedBy map[int64]struct{}

	eff        sim.Priority
	held       map[ObjectID]Mode
	blockStart sim.Time
	blocked    bool
	wounded    error
}

// NewTxState returns transaction state with the given identity and
// assigned priority. Read and write sets may be filled in afterwards but
// before Register.
func NewTxState(id int64, base sim.Priority, p *sim.Proc) *TxState {
	return &TxState{
		ID:        id,
		Base:      base,
		Proc:      p,
		BlockedBy: make(map[int64]struct{}),
		eff:       base,
		held:      make(map[ObjectID]Mode),
	}
}

// Eff returns the current effective (possibly inherited) priority.
func (t *TxState) Eff() sim.Priority { return t.eff }

// Holds reports the mode in which t holds obj, if any.
func (t *TxState) Holds(obj ObjectID) (Mode, bool) {
	m, ok := t.held[obj]
	return m, ok
}

// HeldCount returns the number of locks currently held.
func (t *TxState) HeldCount() int { return len(t.held) }

// WantsWrite reports whether obj is in the declared write set.
func (t *TxState) WantsWrite(obj ObjectID) bool {
	for _, o := range t.WriteSet {
		if o == obj {
			return true
		}
	}
	return false
}

// setEff updates the effective priority, notifying the owner on change.
func (t *TxState) setEff(p sim.Priority) {
	if t.eff == p {
		return
	}
	t.eff = p
	if t.OnPrioChange != nil {
		t.OnPrioChange(p)
	}
}

// noteBlocked starts the blocked-interval clock and charges the blame set.
func (t *TxState) noteBlocked(now sim.Time, blamed []*TxState) {
	t.BlockedCount++
	t.blockStart = now
	t.blocked = true
	for _, h := range blamed {
		if h.Base.Lower(t.Base) {
			t.BlockedBy[h.ID] = struct{}{}
		}
	}
}

// noteUnblocked stops the blocked-interval clock and returns the
// interval's length (zero when the transaction was not blocked).
func (t *TxState) noteUnblocked(now sim.Time) sim.Duration {
	if !t.blocked {
		return 0
	}
	t.blocked = false
	d := now.Sub(t.blockStart)
	t.BlockedTime += d
	return d
}
