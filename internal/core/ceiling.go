package core

import (
	"fmt"

	"rtlock/internal/journal"
	"rtlock/internal/sim"
)

// Ceiling implements the priority ceiling protocol of §3.2 (protocol C).
//
// Three ceilings are defined per data object over the currently
// registered (active) transactions' declared access sets:
//
//   - write-priority ceiling: the priority of the highest-priority
//     transaction that may write the object;
//   - absolute-priority ceiling: the priority of the highest-priority
//     transaction that may read or write the object;
//   - rw-priority ceiling, set dynamically: equal to the absolute
//     ceiling while the object is write-locked and to the write ceiling
//     while it is read-locked.
//
// A transaction may lock an object only if its assigned priority is
// strictly higher than the highest rw-ceiling among objects locked by
// other transactions; otherwise it blocks and the holders of that
// highest-ceiling lock inherit its priority. The protocol is free of
// deadlock and blocks each transaction by at most one lower-priority
// transaction.
//
// NewCeilingExclusive builds the §5 ablation variant (PCP-X) that drops
// read/write semantics and treats every lock as exclusive, so the
// rw-ceiling is always the absolute ceiling and readers never share.
//
// Ceilings are dynamic over the registered transaction population, as in
// the paper's prototype. The deadlock-freedom theorem assumes the
// transaction set (and thus the ceilings) is known when locks are
// granted; with transactions arriving over time, a registration can
// raise a ceiling above a lock that was already granted, and in
// pathological interleavings mutual ceiling blocking becomes possible.
// The experiments resolve such rare waits the same way the paper's hard
// real-time model does: the deadline expires and the transaction is
// aborted. With a static population (everything registered before
// execution) the protocol is deadlock-free; the property tests exercise
// exactly that guarantee.
//
// Hot-path note: the per-object write and absolute ceilings are cached
// (ceilW/ceilA) instead of folded over the registration sets on every
// query, and lock records live in an object-indexed slice with a compact
// list of locked objects. Every cached value equals the commutative Max
// fold it replaces, so journal bytes are unchanged; the golden fixtures
// under testdata/journals pin that equivalence.
type Ceiling struct {
	k         *sim.Kernel
	pr        lockProbes
	exclusive bool
	name      string

	// readers/writers are the registered transactions that declared the
	// object in their read/write set, indexed by object id. ceilW and
	// ceilA cache the write- and absolute-priority ceiling folds over
	// those sets; Register raises them incrementally and Unregister
	// recomputes the departed transaction's objects.
	readers, writers [][]*TxState
	ceilW, ceilA     []sim.Priority

	// locks[obj] is the lock record of a locked object (nil when
	// unlocked); lockedObjs lists the locked object ids, unordered, so
	// ceiling folds touch only locked objects. freeLocks recycles lock
	// records: a record is reachable only through locks[obj] between
	// grant and last release, so reuse cannot alias.
	locks      []*pcpLock
	lockedObjs []ObjectID
	freeLocks  []*pcpLock

	blocked     []*pcpWaiter
	freeWaiters []*pcpWaiter
	graph       *inheritGraph
	seq         uint64

	registered map[*TxState]struct{}

	// scratchObjs is reused by blameFor's sorted-object walk and
	// scratchBlame by its result: the inheritance graph copies blame
	// sets into its own id-sorted storage and the journal helpers only
	// iterate, so each result is fully consumed before the next call.
	scratchObjs  []ObjectID
	scratchBlame []*TxState

	// CeilingBlocks counts blocks where no direct lock conflict
	// existed — the protocol's "insurance premium".
	CeilingBlocks int
	// DirectBlocks counts blocks where the requested object itself was
	// held in a conflicting mode.
	DirectBlocks int

	// lastCeil tracks the last journaled system ceiling so KCeiling
	// records appear only on change.
	lastCeil sim.Priority
	ceilInit bool
	// jsite tags journal records; distributed runs give each site's
	// manager its site id (several managers share one kernel there).
	jsite int32
}

// SetJournalSite tags this manager's journal records with a site id.
// Single-site systems leave the zero default.
func (m *Ceiling) SetJournalSite(site int32) { m.jsite = site }

var _ Manager = (*Ceiling)(nil)

// lockHolder is one holder of a lock record. Holder sets are tiny (one
// writer or a few readers), so a linear slice beats a map.
type lockHolder struct {
	tx   *TxState
	mode Mode
}

// pcpLock is one locked object's record. Records are pooled on the
// manager (freeLocks) and reachable only through the locks slice
// between grant and detachLock, so recycling cannot alias live state.
//
//rtlint:pooled
type pcpLock struct {
	holders   []lockHolder
	writers   int // holders in Write mode
	obj       ObjectID
	lockedIdx int // position in Ceiling.lockedObjs
}

func (l *pcpLock) find(tx *TxState) int {
	for i := range l.holders {
		if l.holders[i].tx == tx {
			return i
		}
	}
	return -1
}

func (l *pcpLock) holdsTx(tx *TxState) bool { return l.find(tx) >= 0 }

// pcpWaiter is one parked lock waiter. Waiters are pooled on the
// manager (freeWaiters): by the time Acquire's Park returns, the grant
// and cancel paths have both removed every reference (blocked list,
// inheritance graph, token), so recycling cannot alias a live wait. The
// token is embedded by value and the cancel hook is the static-function
// form, so a blocking episode allocates nothing after warm-up.
//
//rtlint:pooled
type pcpWaiter struct {
	m    *Ceiling
	tx   *TxState
	obj  ObjectID
	mode Mode
	tok  sim.Token
	seq  uint64
}

// pcpCancel is pcpWaiter's static cancel hook.
func pcpCancel(arg any) {
	w := arg.(*pcpWaiter)
	w.m.dropWaiter(w)
}

// NewCeiling returns the priority ceiling protocol with read/write lock
// semantics.
func NewCeiling(k *sim.Kernel) *Ceiling { return newCeiling(k, false, "PCP") }

// NewCeilingExclusive returns the exclusive-semantics variant: every lock
// behaves as a write lock. The paper's conclusion raises the question of
// whether read semantics help or hurt schedulability; this variant lets
// the experiments answer it.
func NewCeilingExclusive(k *sim.Kernel) *Ceiling { return newCeiling(k, true, "PCP-X") }

func newCeiling(k *sim.Kernel, exclusive bool, name string) *Ceiling {
	return &Ceiling{
		k:          k,
		pr:         newLockProbes(k),
		exclusive:  exclusive,
		name:       name,
		graph:      newInheritGraph(),
		registered: make(map[*TxState]struct{}),
	}
}

// Name implements Manager.
func (m *Ceiling) Name() string { return m.name }

// growTo ensures the object-indexed slices cover obj.
func (m *Ceiling) growTo(obj ObjectID) {
	need := int(obj) + 1
	if need <= len(m.locks) {
		return
	}
	for len(m.locks) < need {
		m.locks = append(m.locks, nil)
		m.readers = append(m.readers, nil)
		m.writers = append(m.writers, nil)
		m.ceilW = append(m.ceilW, sim.MinPriority)
		m.ceilA = append(m.ceilA, sim.MinPriority)
	}
}

// lockAt returns the lock record of obj, nil when unlocked or unseen.
func (m *Ceiling) lockAt(obj ObjectID) *pcpLock {
	if int(obj) >= len(m.locks) {
		return nil
	}
	return m.locks[obj]
}

// Register implements Manager: the transaction's declared read and write
// sets start contributing to the object ceilings.
func (m *Ceiling) Register(tx *TxState) {
	m.registered[tx] = struct{}{}
	for _, obj := range tx.ReadSet {
		m.growTo(obj)
		m.readers[obj] = append(m.readers[obj], tx)
		m.ceilA[obj] = m.ceilA[obj].Max(tx.Base)
	}
	for _, obj := range tx.WriteSet {
		m.growTo(obj)
		m.writers[obj] = append(m.writers[obj], tx)
		m.ceilW[obj] = m.ceilW[obj].Max(tx.Base)
		m.ceilA[obj] = m.ceilA[obj].Max(tx.Base)
	}
	m.emitCeilingChange()
}

// Registered reports whether tx is currently registered with this
// manager. Distributed callers use it to detect registrations lost to a
// site crash (the manager restarts with an empty table) before issuing
// requests the manager would not understand.
func (m *Ceiling) Registered(tx *TxState) bool {
	_, ok := m.registered[tx]
	return ok
}

// Unregister implements Manager. Removing a transaction can lower
// ceilings, so blocked waiters are re-evaluated.
func (m *Ceiling) Unregister(tx *TxState) {
	delete(m.registered, tx)
	// A departing transaction can only lower a ceiling it was setting:
	// the cached values are Max folds, so when tx.Base sits strictly
	// below the cache the fold result cannot move and the recompute is
	// skipped.
	for _, obj := range tx.ReadSet {
		m.readers[obj] = removeTx(m.readers[obj], tx)
		if tx.Base == m.ceilA[obj] {
			m.recomputeCeil(obj)
		}
	}
	for _, obj := range tx.WriteSet {
		m.writers[obj] = removeTx(m.writers[obj], tx)
		if tx.Base == m.ceilW[obj] || tx.Base == m.ceilA[obj] {
			m.recomputeCeil(obj)
		}
	}
	m.emitCeilingChange()
	m.processBlocked()
}

// removeTx deletes one occurrence of tx from the set (order-insensitive:
// the sets feed only commutative Max folds).
func removeTx(set []*TxState, tx *TxState) []*TxState {
	for i, t := range set {
		if t == tx {
			last := len(set) - 1
			set[i] = set[last]
			set[last] = nil
			return set[:last]
		}
	}
	return set
}

// recomputeCeil refreshes obj's cached write/absolute ceilings from its
// registration sets after a removal.
func (m *Ceiling) recomputeCeil(obj ObjectID) {
	w := sim.MinPriority
	for _, t := range m.writers[obj] {
		w = w.Max(t.Base)
	}
	a := w
	for _, t := range m.readers[obj] {
		a = a.Max(t.Base)
	}
	m.ceilW[obj] = w
	m.ceilA[obj] = a
}

// Acquire implements Manager.
//
//rtlint:allocfree
func (m *Ceiling) Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error {
	if _, ok := m.registered[tx]; !ok {
		return fmt.Errorf("pcp: transaction %d acquired before Register", tx.ID) //rtlint:allow allocfree misuse-error path: boxing tx.ID for fmt never runs in a correct simulation
	}
	if m.exclusive {
		mode = Write
	}
	m.pr.emitRequest(m.k, m.jsite, tx, obj, mode)
	if held, ok := tx.Holds(obj); ok && (held == Write || mode == Read) {
		m.pr.emitGrant(m.k, m.jsite, tx, obj, mode)
		return nil
	}
	if m.grantable(tx, obj, mode) {
		m.grant(tx, obj, mode)
		return nil
	}
	m.seq++
	w := m.getWaiter() //rtlint:allow allocfree inlined pool-miss &pcpWaiter literal from getWaiter's growth path
	w.tx, w.obj, w.mode, w.seq = tx, obj, mode, m.seq
	m.blocked = append(m.blocked, w)
	blamed := m.blameFor(tx, obj, mode)
	ceilingBlock := !pcpConflict(m.lockAt(obj), tx, mode)
	if ceilingBlock {
		m.CeilingBlocks++
	} else {
		m.DirectBlocks++
	}
	m.pr.emitBlock(m.k, m.jsite, tx, obj, blamed, ceilingBlock)
	tx.noteBlocked(m.k.Now(), blamed) //rtlint:allow allocfree inlined lazy BlockedBy map, allocated once per TxState on its first block
	m.graph.setBlame(tx, blamed)
	w.tok.SetCancel(pcpCancel, w)
	err := p.Park(&w.tok)
	m.pr.observeUnblocked(m.k, tx)
	m.putWaiter(w)
	return err
}

// getWaiter hands out a reset waiter from the pool.
//
//rtlint:allocfree
func (m *Ceiling) getWaiter() *pcpWaiter {
	if n := len(m.freeWaiters); n > 0 {
		w := m.freeWaiters[n-1]
		m.freeWaiters[n-1] = nil
		m.freeWaiters = m.freeWaiters[:n-1]
		return w
	}
	return &pcpWaiter{m: m} //rtlint:allow allocfree pool-miss growth path: one waiter per high-water-mark, amortized to zero in steady state
}

// putWaiter recycles a waiter whose Park has returned.
//
//rtlint:allocfree
func (m *Ceiling) putWaiter(w *pcpWaiter) {
	w.tx = nil
	w.tok.Reset()
	m.freeWaiters = append(m.freeWaiters, w)
}

// ReleaseAll implements Manager.
func (m *Ceiling) ReleaseAll(tx *TxState) {
	// tx.held is sorted by object id, keeping the journal's release
	// order deterministic.
	for i := range tx.held {
		obj := tx.held[i].obj
		m.pr.emitRelease(m.k, m.jsite, tx, obj)
		l := m.lockAt(obj)
		if l == nil {
			continue
		}
		if i := l.find(tx); i >= 0 {
			if l.holders[i].mode == Write {
				l.writers--
			}
			last := len(l.holders) - 1
			l.holders[i] = l.holders[last]
			l.holders[last] = lockHolder{}
			l.holders = l.holders[:last]
		}
		if len(l.holders) == 0 {
			m.detachLock(l)
		}
	}
	tx.clearHeld()
	m.emitCeilingChange()
	m.graph.dropHolder(tx)
	m.processBlocked()
}

// detachLock removes l from the locked-object list and recycles it.
//
//rtlint:allocfree
func (m *Ceiling) detachLock(l *pcpLock) {
	m.locks[l.obj] = nil
	last := len(m.lockedObjs) - 1
	if l.lockedIdx != last {
		moved := m.lockedObjs[last]
		m.lockedObjs[l.lockedIdx] = moved
		m.locks[moved].lockedIdx = l.lockedIdx
	}
	m.lockedObjs = m.lockedObjs[:last]
	l.holders = l.holders[:0]
	l.writers = 0
	m.freeLocks = append(m.freeLocks, l)
}

// WriteCeiling returns the current write-priority ceiling of obj.
func (m *Ceiling) WriteCeiling(obj ObjectID) sim.Priority {
	if int(obj) >= len(m.ceilW) {
		return sim.MinPriority
	}
	return m.ceilW[obj]
}

// AbsCeiling returns the current absolute-priority ceiling of obj.
func (m *Ceiling) AbsCeiling(obj ObjectID) sim.Priority {
	if int(obj) >= len(m.ceilA) {
		return sim.MinPriority
	}
	return m.ceilA[obj]
}

// RWCeiling returns the dynamic rw-priority ceiling of a locked object:
// the absolute ceiling if write-locked, the write ceiling if read-locked,
// and MinPriority if unlocked.
func (m *Ceiling) RWCeiling(obj ObjectID) sim.Priority {
	l := m.lockAt(obj)
	if l == nil || len(l.holders) == 0 {
		return sim.MinPriority
	}
	if m.exclusive || l.writers > 0 {
		return m.AbsCeiling(obj)
	}
	return m.WriteCeiling(obj)
}

// Waiting reports how many transactions are ceiling- or direct-blocked.
func (m *Ceiling) Waiting() int { return len(m.blocked) }

// LockedObjects reports how many objects are currently locked.
func (m *Ceiling) LockedObjects() int { return len(m.lockedObjs) }

// grantable applies the ceiling test: tx's assigned priority must be
// strictly higher than every rw-ceiling among objects locked by other
// transactions. Lock compatibility on the requested object is implied by
// the ceiling test (the requester's own registration contributes to the
// ceilings) but checked anyway as a safety net.
func (m *Ceiling) grantable(tx *TxState, obj ObjectID, mode Mode) bool {
	if pcpConflict(m.lockAt(obj), tx, mode) {
		return false
	}
	if testCeilingBypass != nil && testCeilingBypass(tx.ID) {
		// Mutation hook: skip the ceiling comparison (the direct-conflict
		// check above still holds, so LockSafety stays intact while the
		// ceiling discipline is broken). Test-only; nil in production.
		return true
	}
	ceil, any := m.maxOtherCeiling(tx)
	return !any || tx.Base.Higher(ceil)
}

// testCeilingBypass, when non-nil, makes grantable skip the ceiling test
// for matching transactions. It exists solely so the schedule explorer's
// seeded-mutation self-test can prove it detects a broken protocol;
// see SetCeilingBypassForTest.
var testCeilingBypass func(txID int64) bool

// SetCeilingBypassForTest installs (nil removes) a predicate that
// disables the priority-ceiling comparison for matching transaction ids.
// FOR TESTS ONLY: it intentionally breaks the protocol's deadlock- and
// blocked-at-most-once guarantees so exploration self-tests have a real
// violation to find. Callers must restore nil before other tests run.
func SetCeilingBypassForTest(f func(txID int64) bool) { testCeilingBypass = f }

// maxOtherCeiling returns the highest rw-ceiling among objects locked by
// transactions other than tx, and whether any such object exists. Objects
// tx itself holds (even shared with others) are excluded: a reader must
// not be blocked by the ceiling of its own read lock, or two readers of a
// high-ceiling object would deadlock each other.
func (m *Ceiling) maxOtherCeiling(tx *TxState) (sim.Priority, bool) {
	ceil := sim.MinPriority
	any := false
	// Commutative Max fold: lockedObjs order is irrelevant. Every entry
	// has at least one holder, so an object tx does not hold is locked
	// by another transaction by construction.
	for _, obj := range m.lockedObjs {
		l := m.locks[obj]
		if l.holdsTx(tx) {
			continue
		}
		any = true
		ceil = ceil.Max(m.RWCeiling(obj))
	}
	return ceil, any
}

// blameFor identifies the holders of the highest-rw-ceiling object locked
// by transactions other than tx — the transactions the paper says tx "is
// blocked by". Ties break toward the lowest object id for determinism.
// When the block is a direct conflict on the requested object with no
// ceiling involvement, the conflicting holders are blamed.
func (m *Ceiling) blameFor(tx *TxState, obj ObjectID, mode Mode) []*TxState {
	best := sim.MinPriority
	bestObj := ObjectID(-1)
	objs := append(m.scratchObjs[:0], m.lockedObjs...)
	m.scratchObjs = objs[:0]
	sortObjIDs(objs)
	for _, obj := range objs {
		l := m.locks[obj]
		if l.holdsTx(tx) {
			continue
		}
		c := m.RWCeiling(obj)
		if bestObj < 0 || c.Higher(best) {
			best = c
			bestObj = obj
		}
	}
	if bestObj < 0 {
		// No ceiling-bearing lock: the wait is a direct conflict on
		// the requested object (possible when the requester shares a
		// read lock it now wants to upgrade, or when ceilings moved
		// between test and re-test). Blame the conflicting holders.
		if l := m.lockAt(obj); l != nil {
			blamed := m.scratchBlame[:0]
			for _, h := range l.holders {
				if h.tx != tx && !compatible(h.mode, mode) {
					blamed = append(blamed, h.tx)
				}
			}
			m.scratchBlame = blamed
			sortTxByID(blamed)
			return blamed
		}
		return nil
	}
	l := m.locks[bestObj]
	blamed := m.scratchBlame[:0]
	for _, h := range l.holders {
		if h.tx != tx {
			blamed = append(blamed, h.tx)
		}
	}
	m.scratchBlame = blamed
	sortTxByID(blamed)
	return blamed
}

func (m *Ceiling) grant(tx *TxState, obj ObjectID, mode Mode) {
	m.growTo(obj)
	l := m.locks[obj]
	if l == nil {
		if n := len(m.freeLocks); n > 0 {
			l = m.freeLocks[n-1]
			m.freeLocks[n-1] = nil
			m.freeLocks = m.freeLocks[:n-1]
		} else {
			l = &pcpLock{}
		}
		l.obj = obj
		l.lockedIdx = len(m.lockedObjs)
		m.lockedObjs = append(m.lockedObjs, obj)
		m.locks[obj] = l
	}
	if i := l.find(tx); i < 0 {
		l.holders = append(l.holders, lockHolder{tx: tx, mode: mode})
		if mode == Write {
			l.writers++
		}
	} else if mode == Write && l.holders[i].mode == Read {
		l.holders[i].mode = Write
		l.writers++
	}
	tx.setHeld(obj, mode)
	m.pr.emitGrant(m.k, m.jsite, tx, obj, mode)
	m.emitCeilingChange()
}

// emitCeilingChange journals the system ceiling — the highest rw-ceiling
// over all locked objects — whenever it moves. Folding Max over the
// locked-object list is order-independent, so the record stream stays
// deterministic.
func (m *Ceiling) emitCeilingChange() {
	if m.k.Journal() == nil {
		return
	}
	ceil := sim.MinPriority
	for _, obj := range m.lockedObjs {
		ceil = ceil.Max(m.RWCeiling(obj))
	}
	if m.ceilInit && ceil == m.lastCeil {
		return
	}
	m.ceilInit = true
	m.lastCeil = ceil
	m.k.Emit(journal.KCeiling, 0, 0, ceil.Deadline, ceil.TxID, "")
}

// processBlocked repeatedly grants the highest-effective-priority blocked
// transaction that now passes the ceiling test, then re-blames the rest
// so priority inheritance tracks the new lock state.
func (m *Ceiling) processBlocked() {
	for {
		m.orderBlocked()
		grantedIdx := -1
		for i, w := range m.blocked {
			if m.grantable(w.tx, w.obj, w.mode) {
				grantedIdx = i
				break
			}
		}
		if grantedIdx < 0 {
			break
		}
		w := m.blocked[grantedIdx]
		m.blocked = append(m.blocked[:grantedIdx], m.blocked[grantedIdx+1:]...)
		m.graph.clear(w.tx)
		m.grant(w.tx, w.obj, w.mode)
		w.tok.Wake(nil)
	}
	for _, w := range m.blocked {
		blamed := m.blameFor(w.tx, w.obj, w.mode)
		m.pr.emitBlame(m.k, m.jsite, w.tx, w.obj, blamed, !pcpConflict(m.lockAt(w.obj), w.tx, w.mode))
		m.graph.setBlame(w.tx, blamed)
	}
}

func (m *Ceiling) orderBlocked() { sortPCPWaiters(m.blocked) }

func (m *Ceiling) dropWaiter(w *pcpWaiter) {
	for i, q := range m.blocked {
		if q == w {
			m.blocked = append(m.blocked[:i], m.blocked[i+1:]...)
			break
		}
	}
	m.graph.clear(w.tx)
	// The departed waiter may have been the reason others could not be
	// re-blamed correctly; recompute.
	m.processBlocked()
}

// pcpConflict reports whether l has a holder other than tx whose mode
// conflicts with mode.
func pcpConflict(l *pcpLock, tx *TxState, mode Mode) bool {
	if l == nil {
		return false
	}
	for _, h := range l.holders {
		if h.tx != tx && !compatible(h.mode, mode) {
			return true
		}
	}
	return false
}
