package core

import (
	"fmt"
	"sort"

	"rtlock/internal/journal"
	"rtlock/internal/sim"
)

// Ceiling implements the priority ceiling protocol of §3.2 (protocol C).
//
// Three ceilings are defined per data object over the currently
// registered (active) transactions' declared access sets:
//
//   - write-priority ceiling: the priority of the highest-priority
//     transaction that may write the object;
//   - absolute-priority ceiling: the priority of the highest-priority
//     transaction that may read or write the object;
//   - rw-priority ceiling, set dynamically: equal to the absolute
//     ceiling while the object is write-locked and to the write ceiling
//     while it is read-locked.
//
// A transaction may lock an object only if its assigned priority is
// strictly higher than the highest rw-ceiling among objects locked by
// other transactions; otherwise it blocks and the holders of that
// highest-ceiling lock inherit its priority. The protocol is free of
// deadlock and blocks each transaction by at most one lower-priority
// transaction.
//
// NewCeilingExclusive builds the §5 ablation variant (PCP-X) that drops
// read/write semantics and treats every lock as exclusive, so the
// rw-ceiling is always the absolute ceiling and readers never share.
//
// Ceilings are dynamic over the registered transaction population, as in
// the paper's prototype. The deadlock-freedom theorem assumes the
// transaction set (and thus the ceilings) is known when locks are
// granted; with transactions arriving over time, a registration can
// raise a ceiling above a lock that was already granted, and in
// pathological interleavings mutual ceiling blocking becomes possible.
// The experiments resolve such rare waits the same way the paper's hard
// real-time model does: the deadline expires and the transaction is
// aborted. With a static population (everything registered before
// execution) the protocol is deadlock-free; the property tests exercise
// exactly that guarantee.
type Ceiling struct {
	k         *sim.Kernel
	exclusive bool
	name      string

	readers map[ObjectID]map[*TxState]struct{}
	writers map[ObjectID]map[*TxState]struct{}
	locks   map[ObjectID]*pcpLock
	blocked []*pcpWaiter
	graph   *inheritGraph
	seq     uint64

	registered map[*TxState]struct{}

	// CeilingBlocks counts blocks where no direct lock conflict
	// existed — the protocol's "insurance premium".
	CeilingBlocks int
	// DirectBlocks counts blocks where the requested object itself was
	// held in a conflicting mode.
	DirectBlocks int

	// lastCeil tracks the last journaled system ceiling so KCeiling
	// records appear only on change.
	lastCeil sim.Priority
	ceilInit bool
	// jsite tags journal records; distributed runs give each site's
	// manager its site id (several managers share one kernel there).
	jsite int32
}

// SetJournalSite tags this manager's journal records with a site id.
// Single-site systems leave the zero default.
func (m *Ceiling) SetJournalSite(site int32) { m.jsite = site }

var _ Manager = (*Ceiling)(nil)

type pcpLock struct {
	holders map[*TxState]Mode
}

type pcpWaiter struct {
	tx   *TxState
	obj  ObjectID
	mode Mode
	tok  *sim.Token
	seq  uint64
}

// NewCeiling returns the priority ceiling protocol with read/write lock
// semantics.
func NewCeiling(k *sim.Kernel) *Ceiling { return newCeiling(k, false, "PCP") }

// NewCeilingExclusive returns the exclusive-semantics variant: every lock
// behaves as a write lock. The paper's conclusion raises the question of
// whether read semantics help or hurt schedulability; this variant lets
// the experiments answer it.
func NewCeilingExclusive(k *sim.Kernel) *Ceiling { return newCeiling(k, true, "PCP-X") }

func newCeiling(k *sim.Kernel, exclusive bool, name string) *Ceiling {
	return &Ceiling{
		k:          k,
		exclusive:  exclusive,
		name:       name,
		readers:    make(map[ObjectID]map[*TxState]struct{}),
		writers:    make(map[ObjectID]map[*TxState]struct{}),
		locks:      make(map[ObjectID]*pcpLock),
		graph:      newInheritGraph(),
		registered: make(map[*TxState]struct{}),
	}
}

// Name implements Manager.
func (m *Ceiling) Name() string { return m.name }

// Register implements Manager: the transaction's declared read and write
// sets start contributing to the object ceilings.
func (m *Ceiling) Register(tx *TxState) {
	m.registered[tx] = struct{}{}
	for _, obj := range tx.ReadSet {
		addSet(m.readers, obj, tx)
	}
	for _, obj := range tx.WriteSet {
		addSet(m.writers, obj, tx)
	}
	m.emitCeilingChange()
}

// Unregister implements Manager. Removing a transaction can lower
// ceilings, so blocked waiters are re-evaluated.
func (m *Ceiling) Unregister(tx *TxState) {
	delete(m.registered, tx)
	for _, obj := range tx.ReadSet {
		delSet(m.readers, obj, tx)
	}
	for _, obj := range tx.WriteSet {
		delSet(m.writers, obj, tx)
	}
	m.emitCeilingChange()
	m.processBlocked()
}

// Acquire implements Manager.
func (m *Ceiling) Acquire(p *sim.Proc, tx *TxState, obj ObjectID, mode Mode) error {
	if _, ok := m.registered[tx]; !ok {
		return fmt.Errorf("pcp: transaction %d acquired before Register", tx.ID)
	}
	if m.exclusive {
		mode = Write
	}
	emitRequest(m.k, m.jsite, tx, obj, mode)
	if held, ok := tx.held[obj]; ok && (held == Write || mode == Read) {
		emitGrant(m.k, m.jsite, tx, obj, mode)
		return nil
	}
	if m.grantable(tx, obj, mode) {
		m.grant(tx, obj, mode)
		return nil
	}
	m.seq++
	w := &pcpWaiter{tx: tx, obj: obj, mode: mode, tok: &sim.Token{}, seq: m.seq}
	m.blocked = append(m.blocked, w)
	blamed := m.blameFor(tx, obj, mode)
	ceilingBlock := !holdersOf(m.locks[obj], tx, mode)
	if ceilingBlock {
		m.CeilingBlocks++
	} else {
		m.DirectBlocks++
	}
	emitBlock(m.k, m.jsite, tx, obj, blamed, ceilingBlock)
	tx.noteBlocked(m.k.Now(), blamed)
	m.graph.setBlame(tx, blamed)
	w.tok.OnCancel = func() { m.dropWaiter(w) }
	err := p.Park(w.tok)
	observeUnblocked(m.k, tx)
	return err
}

// ReleaseAll implements Manager.
func (m *Ceiling) ReleaseAll(tx *TxState) {
	// Sorted iteration keeps the journal's release order deterministic.
	affected := make([]ObjectID, 0, len(tx.held))
	for obj := range tx.held {
		affected = append(affected, obj)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	for _, obj := range affected {
		delete(tx.held, obj)
		emitRelease(m.k, m.jsite, tx, obj)
		l := m.locks[obj]
		if l == nil {
			continue
		}
		delete(l.holders, tx)
		if len(l.holders) == 0 {
			delete(m.locks, obj)
		}
	}
	m.emitCeilingChange()
	m.graph.dropHolder(tx)
	m.processBlocked()
}

// WriteCeiling returns the current write-priority ceiling of obj.
func (m *Ceiling) WriteCeiling(obj ObjectID) sim.Priority {
	ceil := sim.MinPriority
	//rtlint:allow maprange commutative Max fold over base priorities, no side effects
	for t := range m.writers[obj] {
		ceil = ceil.Max(t.Base)
	}
	return ceil
}

// AbsCeiling returns the current absolute-priority ceiling of obj.
func (m *Ceiling) AbsCeiling(obj ObjectID) sim.Priority {
	ceil := m.WriteCeiling(obj)
	//rtlint:allow maprange commutative Max fold over base priorities, no side effects
	for t := range m.readers[obj] {
		ceil = ceil.Max(t.Base)
	}
	return ceil
}

// RWCeiling returns the dynamic rw-priority ceiling of a locked object:
// the absolute ceiling if write-locked, the write ceiling if read-locked,
// and MinPriority if unlocked.
func (m *Ceiling) RWCeiling(obj ObjectID) sim.Priority {
	l := m.locks[obj]
	if l == nil || len(l.holders) == 0 {
		return sim.MinPriority
	}
	if m.exclusive {
		return m.AbsCeiling(obj)
	}
	//rtlint:allow maprange any-write detection; result is the same whichever holder is seen first
	for _, mode := range l.holders {
		if mode == Write {
			return m.AbsCeiling(obj)
		}
	}
	return m.WriteCeiling(obj)
}

// Waiting reports how many transactions are ceiling- or direct-blocked.
func (m *Ceiling) Waiting() int { return len(m.blocked) }

// LockedObjects reports how many objects are currently locked.
func (m *Ceiling) LockedObjects() int { return len(m.locks) }

// grantable applies the ceiling test: tx's assigned priority must be
// strictly higher than every rw-ceiling among objects locked by other
// transactions. Lock compatibility on the requested object is implied by
// the ceiling test (the requester's own registration contributes to the
// ceilings) but checked anyway as a safety net.
func (m *Ceiling) grantable(tx *TxState, obj ObjectID, mode Mode) bool {
	if holdersOf(m.locks[obj], tx, mode) {
		return false
	}
	if testCeilingBypass != nil && testCeilingBypass(tx.ID) {
		// Mutation hook: skip the ceiling comparison (the direct-conflict
		// check above still holds, so LockSafety stays intact while the
		// ceiling discipline is broken). Test-only; nil in production.
		return true
	}
	ceil, any := m.maxOtherCeiling(tx)
	return !any || tx.Base.Higher(ceil)
}

// testCeilingBypass, when non-nil, makes grantable skip the ceiling test
// for matching transactions. It exists solely so the schedule explorer's
// seeded-mutation self-test can prove it detects a broken protocol;
// see SetCeilingBypassForTest.
var testCeilingBypass func(txID int64) bool

// SetCeilingBypassForTest installs (nil removes) a predicate that
// disables the priority-ceiling comparison for matching transaction ids.
// FOR TESTS ONLY: it intentionally breaks the protocol's deadlock- and
// blocked-at-most-once guarantees so exploration self-tests have a real
// violation to find. Callers must restore nil before other tests run.
func SetCeilingBypassForTest(f func(txID int64) bool) { testCeilingBypass = f }

// maxOtherCeiling returns the highest rw-ceiling among objects locked by
// transactions other than tx, and whether any such object exists. Objects
// tx itself holds (even shared with others) are excluded: a reader must
// not be blocked by the ceiling of its own read lock, or two readers of a
// high-ceiling object would deadlock each other.
func (m *Ceiling) maxOtherCeiling(tx *TxState) (sim.Priority, bool) {
	ceil := sim.MinPriority
	any := false
	//rtlint:allow maprange commutative Max fold plus an existence flag, no side effects
	for obj, l := range m.locks {
		if _, mine := l.holders[tx]; mine {
			continue
		}
		if !lockedByOther(l, tx) {
			continue
		}
		any = true
		ceil = ceil.Max(m.RWCeiling(obj))
	}
	return ceil, any
}

// blameFor identifies the holders of the highest-rw-ceiling object locked
// by transactions other than tx — the transactions the paper says tx "is
// blocked by". Ties break toward the lowest object id for determinism.
// When the block is a direct conflict on the requested object with no
// ceiling involvement, the conflicting holders are blamed.
func (m *Ceiling) blameFor(tx *TxState, obj ObjectID, mode Mode) []*TxState {
	best := sim.MinPriority
	bestObj := ObjectID(-1)
	objs := make([]ObjectID, 0, len(m.locks))
	for obj := range m.locks {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, obj := range objs {
		l := m.locks[obj]
		if _, mine := l.holders[tx]; mine {
			continue
		}
		if !lockedByOther(l, tx) {
			continue
		}
		c := m.RWCeiling(obj)
		if bestObj < 0 || c.Higher(best) {
			best = c
			bestObj = obj
		}
	}
	if bestObj < 0 {
		// No ceiling-bearing lock: the wait is a direct conflict on
		// the requested object (possible when the requester shares a
		// read lock it now wants to upgrade, or when ceilings moved
		// between test and re-test). Blame the conflicting holders.
		if l := m.locks[obj]; l != nil {
			var blamed []*TxState
			for h, hm := range l.holders {
				if h != tx && !compatible(hm, mode) {
					blamed = append(blamed, h)
				}
			}
			sort.Slice(blamed, func(i, j int) bool { return blamed[i].ID < blamed[j].ID })
			return blamed
		}
		return nil
	}
	var blamed []*TxState
	for h := range m.locks[bestObj].holders {
		if h != tx {
			blamed = append(blamed, h)
		}
	}
	sort.Slice(blamed, func(i, j int) bool { return blamed[i].ID < blamed[j].ID })
	return blamed
}

func (m *Ceiling) grant(tx *TxState, obj ObjectID, mode Mode) {
	l := m.locks[obj]
	if l == nil {
		l = &pcpLock{holders: make(map[*TxState]Mode)}
		m.locks[obj] = l
	}
	if cur, ok := l.holders[tx]; !ok || mode == Write && cur == Read {
		l.holders[tx] = mode
	}
	if cur, ok := tx.held[obj]; !ok || mode == Write && cur == Read {
		tx.held[obj] = mode
	}
	emitGrant(m.k, m.jsite, tx, obj, mode)
	m.emitCeilingChange()
}

// emitCeilingChange journals the system ceiling — the highest rw-ceiling
// over all locked objects — whenever it moves. Folding Max over the lock
// map is order-independent, so the record stream stays deterministic.
func (m *Ceiling) emitCeilingChange() {
	if m.k.Journal() == nil {
		return
	}
	ceil := sim.MinPriority
	//rtlint:allow maprange commutative Max fold; RWCeiling reads lock state without mutating it
	for obj := range m.locks {
		ceil = ceil.Max(m.RWCeiling(obj))
	}
	if m.ceilInit && ceil == m.lastCeil {
		return
	}
	m.ceilInit = true
	m.lastCeil = ceil
	m.k.Emit(journal.KCeiling, 0, 0, ceil.Deadline, ceil.TxID, "")
}

// processBlocked repeatedly grants the highest-effective-priority blocked
// transaction that now passes the ceiling test, then re-blames the rest
// so priority inheritance tracks the new lock state.
func (m *Ceiling) processBlocked() {
	for {
		m.orderBlocked()
		grantedIdx := -1
		for i, w := range m.blocked {
			if m.grantable(w.tx, w.obj, w.mode) {
				grantedIdx = i
				break
			}
		}
		if grantedIdx < 0 {
			break
		}
		w := m.blocked[grantedIdx]
		m.blocked = append(m.blocked[:grantedIdx], m.blocked[grantedIdx+1:]...)
		m.graph.clear(w.tx)
		m.grant(w.tx, w.obj, w.mode)
		w.tok.Wake(nil)
	}
	for _, w := range m.blocked {
		blamed := m.blameFor(w.tx, w.obj, w.mode)
		emitBlame(m.k, m.jsite, w.tx, w.obj, blamed, !holdersOf(m.locks[w.obj], w.tx, w.mode))
		m.graph.setBlame(w.tx, blamed)
	}
}

func (m *Ceiling) orderBlocked() {
	sort.SliceStable(m.blocked, func(i, j int) bool {
		a, b := m.blocked[i], m.blocked[j]
		if a.tx.Eff() != b.tx.Eff() {
			return a.tx.Eff().Higher(b.tx.Eff())
		}
		return a.seq < b.seq
	})
}

func (m *Ceiling) dropWaiter(w *pcpWaiter) {
	for i, q := range m.blocked {
		if q == w {
			m.blocked = append(m.blocked[:i], m.blocked[i+1:]...)
			break
		}
	}
	m.graph.clear(w.tx)
	// The departed waiter may have been the reason others could not be
	// re-blamed correctly; recompute.
	m.processBlocked()
}

// holdersOf reports whether l has a holder other than tx whose mode
// conflicts with mode.
func holdersOf(l *pcpLock, tx *TxState, mode Mode) bool {
	if l == nil {
		return false
	}
	for h, hm := range l.holders {
		if h != tx && !compatible(hm, mode) {
			return true
		}
	}
	return false
}

func lockedByOther(l *pcpLock, tx *TxState) bool {
	for h := range l.holders {
		if h != tx {
			return true
		}
	}
	return false
}

func addSet(m map[ObjectID]map[*TxState]struct{}, obj ObjectID, tx *TxState) {
	s, ok := m[obj]
	if !ok {
		s = make(map[*TxState]struct{})
		m[obj] = s
	}
	s[tx] = struct{}{}
}

func delSet(m map[ObjectID]map[*TxState]struct{}, obj ObjectID, tx *TxState) {
	s, ok := m[obj]
	if !ok {
		return
	}
	delete(s, tx)
	if len(s) == 0 {
		delete(m, obj)
	}
}
