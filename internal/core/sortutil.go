package core

// Typed insertion sorts for the managers' hot-path orderings. The
// slices involved — blamed-holder sets, per-object waiter queues, the
// ceiling manager's blocked list — are small and usually nearly sorted
// (queues are re-ordered after single insertions or priority moves), a
// regime where insertion sort beats sort.Slice while also avoiding its
// per-call closure allocation and reflect-based swapper. All keys below
// are strict total orders (transaction ids and waiter sequence numbers
// are unique), so stability is preserved trivially.

// sortTxByID orders a blamed-holder set by transaction id.
func sortTxByID(s []*TxState) {
	for i := 1; i < len(s); i++ {
		t := s[i]
		j := i - 1
		for j >= 0 && s[j].ID > t.ID {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = t
	}
}

// sortObjIDs orders an object-id slice ascending.
func sortObjIDs(s []ObjectID) {
	for i := 1; i < len(s); i++ {
		o := s[i]
		j := i - 1
		for j >= 0 && s[j] > o {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = o
	}
}

// waiterAfter reports whether a orders strictly after b: lower effective
// priority first loses, ties break toward the smaller sequence number.
func waiterAfter(a, b *lockWaiter) bool {
	if a.tx.Eff() != b.tx.Eff() {
		return b.tx.Eff().Higher(a.tx.Eff())
	}
	return a.seq > b.seq
}

// sortWaitersByPrio orders a waiter queue by effective priority, ties by
// sequence number.
func sortWaitersByPrio(q []*lockWaiter) {
	for i := 1; i < len(q); i++ {
		w := q[i]
		j := i - 1
		for j >= 0 && waiterAfter(q[j], w) {
			q[j+1] = q[j]
			j--
		}
		q[j+1] = w
	}
}

// sortPCPWaiters orders the ceiling manager's blocked list by effective
// priority, ties by sequence number.
func sortPCPWaiters(q []*pcpWaiter) {
	for i := 1; i < len(q); i++ {
		w := q[i]
		j := i - 1
		for j >= 0 {
			a := q[j]
			if a.tx.Eff() != w.tx.Eff() {
				if !w.tx.Eff().Higher(a.tx.Eff()) {
					break
				}
			} else if a.seq <= w.seq {
				break
			}
			q[j+1] = a
			j--
		}
		q[j+1] = w
	}
}

// sortWaitersBySeq orders a waiter queue FIFO by sequence number.
func sortWaitersBySeq(q []*lockWaiter) {
	for i := 1; i < len(q); i++ {
		w := q[i]
		j := i - 1
		for j >= 0 && q[j].seq > w.seq {
			q[j+1] = q[j]
			j--
		}
		q[j+1] = w
	}
}
