package core

import (
	"errors"
	"testing"

	"rtlock/internal/sim"
)

func TestTimestampOrderAssigned(t *testing.T) {
	k := sim.NewKernel()
	m := NewTimestamp(k)
	a := NewTxState(1, sim.Priority{Deadline: 1, TxID: 1}, nil)
	b := NewTxState(2, sim.Priority{Deadline: 2, TxID: 2}, nil)
	m.Register(a)
	m.Register(b)
	// b registered later: its write advances wts beyond a's reach.
	if err := m.Acquire(nil, b, 1, Write); err != nil {
		t.Fatalf("b write: %v", err)
	}
	if err := m.Acquire(nil, a, 1, Read); !errors.Is(err, ErrRestart) {
		t.Fatalf("a's stale read returned %v, want ErrRestart", err)
	}
	if m.Restarts != 1 {
		t.Fatalf("Restarts = %d", m.Restarts)
	}
}

func TestTimestampLateWriteAfterRead(t *testing.T) {
	k := sim.NewKernel()
	m := NewTimestamp(k)
	a := NewTxState(1, sim.Priority{Deadline: 1, TxID: 1}, nil)
	b := NewTxState(2, sim.Priority{Deadline: 2, TxID: 2}, nil)
	m.Register(a)
	m.Register(b)
	if err := m.Acquire(nil, b, 5, Read); err != nil {
		t.Fatalf("b read: %v", err)
	}
	// a (older) writing what b (newer) already read is too late.
	if err := m.Acquire(nil, a, 5, Write); !errors.Is(err, ErrRestart) {
		t.Fatalf("a's late write returned %v, want ErrRestart", err)
	}
}

func TestTimestampInOrderAccessesSucceed(t *testing.T) {
	k := sim.NewKernel()
	m := NewTimestamp(k)
	a := NewTxState(1, sim.Priority{Deadline: 1, TxID: 1}, nil)
	b := NewTxState(2, sim.Priority{Deadline: 2, TxID: 2}, nil)
	m.Register(a)
	m.Register(b)
	if err := m.Acquire(nil, a, 1, Write); err != nil {
		t.Fatalf("a write: %v", err)
	}
	if err := m.Acquire(nil, b, 1, Write); err != nil {
		t.Fatalf("b later write: %v", err)
	}
	if err := m.Acquire(nil, b, 1, Read); err != nil {
		t.Fatalf("b re-read own object: %v", err)
	}
	rts, wts := m.ObjectTimestamps(1)
	if wts != 2 || rts != 2 {
		t.Fatalf("timestamps rts=%d wts=%d, want 2/2", rts, wts)
	}
	m.ReleaseAll(b)
	if b.HeldCount() != 0 {
		t.Fatal("access record not cleared")
	}
}

func TestTimestampReregisterMovesForward(t *testing.T) {
	k := sim.NewKernel()
	m := NewTimestamp(k)
	a := NewTxState(1, sim.Priority{Deadline: 1, TxID: 1}, nil)
	b := NewTxState(2, sim.Priority{Deadline: 2, TxID: 2}, nil)
	m.Register(a)
	m.Register(b)
	if err := m.Acquire(nil, b, 1, Write); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(nil, a, 1, Read); !errors.Is(err, ErrRestart) {
		t.Fatal("expected restart")
	}
	// The restart: unregister, re-register (new, later timestamp).
	m.ReleaseAll(a)
	m.Unregister(a)
	a2 := NewTxState(1, sim.Priority{Deadline: 1, TxID: 1}, nil)
	m.Register(a2)
	if err := m.Acquire(nil, a2, 1, Read); err != nil {
		t.Fatalf("restarted read still rejected: %v", err)
	}
}

func TestTimestampUnregisteredRejected(t *testing.T) {
	k := sim.NewKernel()
	m := NewTimestamp(k)
	ghost := NewTxState(9, sim.Priority{Deadline: 9, TxID: 9}, nil)
	if err := m.Acquire(nil, ghost, 1, Read); !errors.Is(err, ErrRestart) {
		t.Fatalf("unregistered access returned %v", err)
	}
}

func TestTimestampNeverBlocks(t *testing.T) {
	// Scripted concurrent transactions under TO always run to
	// completion or are rejected inline; nothing ever parks in the
	// manager. scriptTx treats ErrRestart as a terminal error, so
	// completion of at least the first-registered transaction and zero
	// BlockedCount everywhere is the observable property.
	k := sim.NewKernel()
	m := NewTimestamp(k)
	txs := randomScript(99)
	runScript(t, k, m, txs)
	for _, tx := range txs {
		if tx.st != nil && tx.st.BlockedCount != 0 {
			t.Fatalf("transaction %d blocked under TO", tx.id)
		}
		if tx.err != nil && !errors.Is(tx.err, ErrRestart) {
			t.Fatalf("transaction %d: unexpected error %v", tx.id, tx.err)
		}
	}
}
