package journal

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Journal {
	j := New(42, "proto=PCP size=8")
	j.Append(0, KSpawn, 0, 1, 0, 0, 0, "tx-1")
	j.Append(10, KArrive, 0, 1, 0, 900, 0, "")
	j.Append(20, KLockRequest, 0, 1, 7, 2, 0, "")
	j.Append(20, KLockBlock, 0, 1, 7, 2, 1, "")
	j.Append(55, KLockGrant, 0, 1, 7, 2, 0, "")
	j.Append(90, KLockRelease, 0, 1, 7, 0, 0, "")
	j.Append(90, KCommit, 0, 1, 0, 0, 0, "")
	j.Append(95, KProcEnd, 0, 1, 0, 0, 0, "")
	return j
}

func TestNilJournalSafe(t *testing.T) {
	var j *Journal
	j.Append(1, KCommit, 0, 1, 0, 0, 0, "") // must not panic
	if j.Len() != 0 || j.Records() != nil || j.Seed() != 0 || j.ConfigHash() != 0 {
		t.Fatal("nil journal accessors should return zero values")
	}
}

func TestAppendAssignsDenseSeq(t *testing.T) {
	j := sample()
	for i, r := range j.Records() {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	j := sample()
	var buf bytes.Buffer
	if err := j.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(j, got) {
		t.Fatalf("round trip diverged: %s", Diff(j, got))
	}
	// Re-encoding the decoded journal must reproduce the bytes.
	var buf2 bytes.Buffer
	if err := got.EncodeJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSONL encoding is not byte-stable across a round trip")
	}
}

func TestBinaryAndHashStable(t *testing.T) {
	a, b := sample(), sample()
	var ba, bb bytes.Buffer
	if err := a.EncodeBinary(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.EncodeBinary(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("identical journals encode to different bytes")
	}
	if a.Hash() != b.Hash() || a.HashString() != b.HashString() {
		t.Fatal("identical journals hash differently")
	}
	// Any mutation must change the hash.
	c := sample()
	c.Append(100, KOp, 0, 2, 3, 1, 0, "")
	if a.Hash() == c.Hash() {
		t.Fatal("extra record did not change the hash")
	}
	d := New(43, "proto=PCP size=8")
	if a.Hash() == d.Hash() {
		t.Fatal("different seed did not change the hash")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := sample(), sample()
	if !Equal(a, b) || Diff(a, b) != "" {
		t.Fatal("identical journals reported unequal")
	}
	b.records[3].A = 99
	if Equal(a, b) {
		t.Fatal("mutated journal reported equal")
	}
	if d := Diff(a, b); !strings.Contains(d, "record 3") {
		t.Fatalf("diff did not locate divergence: %q", d)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(1); k <= KCeiling; k++ {
		name := k.String()
		if strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("kind %d name %q did not round trip", k, name)
		}
	}
	if _, ok := KindFromString("nonsense"); ok {
		t.Fatal("bogus kind name resolved")
	}
}

func TestDecodeJSONLRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json\n",
		`{"v":2,"seed":1,"config":"","confighash":"0","records":0}` + "\n",
		`{"v":1,"seed":1,"config":"","confighash":"0","records":5}` + "\n", // count mismatch
		`{"v":1,"seed":1,"config":"","confighash":"0","records":1}` + "\n" +
			`{"seq":0,"at":1,"kind":"bogus","site":0,"tx":1,"obj":0,"a":0,"b":0}` + "\n",
	}
	for i, c := range cases {
		if _, err := DecodeJSONL(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	j := sample()
	var buf bytes.Buffer
	if err := j.EncodeChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	// The block→grant pair must have produced a duration event.
	foundX := false
	for _, e := range doc.TraceEvents {
		if e["ph"] == "X" {
			foundX = true
		}
	}
	if !foundX {
		t.Fatal("no duration events in chrome trace")
	}
}

func TestConfigHashDependsOnConfig(t *testing.T) {
	a := New(1, "alpha")
	b := New(1, "beta")
	if a.ConfigHash() == b.ConfigHash() {
		t.Fatal("different configs hashed equal")
	}
}
