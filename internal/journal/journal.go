// Package journal is the deterministic replay journal: a compact,
// append-only record of every kernel-level event a simulation run emits
// (scheduling, lock requests/grants/blocks, inheritance, ceiling
// changes, aborts and restarts, 2PC votes and decisions, message
// traffic). A journal is keyed by (seed, config hash); the canonical
// encodings are byte-stable, so byte-identity of two journals for the
// same key IS the determinism proof, and the streaming auditors in
// internal/audit consume the record sequence to verify protocol
// invariants.
//
// The package is a dependency-free leaf: timestamps are raw int64
// simulation ticks (1 tick = 1µs, matching internal/sim), so every
// layer — sim, core, netsim, dist, txn, stats — can import it without
// cycles.
//
// A Journal is not safe for concurrent use. That is by construction:
// each simulation run is single-threaded (the kernel hands control to
// one process at a time), and each run owns its own journal.
package journal

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Kind identifies the event class of a Record. Values are part of the
// canonical encoding; never renumber existing kinds.
type Kind uint8

// Event kinds. The A and B payload fields are kind-specific; the table
// below documents their meaning (0 when unused).
const (
	// KSpawn: process creation. Tx = pid, Note = process name.
	KSpawn Kind = 1
	// KProcEnd: process termination. Tx = pid.
	KProcEnd Kind = 2
	// KArrive: a transaction attempt begins. Tx = transaction id,
	// A = deadline (ticks), B = attempt number (0 = first).
	KArrive Kind = 3
	// KRegister: transaction registered with a lock manager (PCP
	// ceilings recomputed). Tx = transaction id.
	KRegister Kind = 4
	// KUnregister: transaction left the lock manager. Tx = id.
	KUnregister Kind = 5
	// KLockRequest: lock requested. Tx = requester, Obj = object,
	// A = mode (1 = read, 2 = write).
	KLockRequest Kind = 6
	// KLockGrant: lock granted. Tx = requester, Obj = object,
	// A = mode.
	KLockGrant Kind = 7
	// KLockBlock: requester blocked. Tx = requester, Obj = object,
	// A = blamed (blocking) transaction id or -1 when blocked on a
	// ceiling with no identified holder, B = 1 when the block is a
	// ceiling block (PCP), 0 for a direct conflict.
	KLockBlock Kind = 8
	// KBlame: a parked waiter's blame edge moved to a new holder
	// (re-blame after a partial release). Tx = waiter, Obj = object,
	// A = new blamed id or -1 when the edge cleared.
	KBlame Kind = 9
	// KLockRelease: one object released at transaction end.
	// Tx = holder, Obj = object.
	KLockRelease Kind = 10
	// KInherit: effective priority change (inheritance or restoration).
	// Tx = transaction, A = new effective deadline, B = new effective
	// tie-break id.
	KInherit Kind = 11
	// KWound: holder wounded by a higher-priority requester.
	// Tx = victim, A = aggressor id.
	KWound Kind = 12
	// KRestart: attempt aborted, transaction will retry.
	// Tx = transaction, A = attempt number that failed.
	KRestart Kind = 13
	// KCommit: transaction committed. Tx = transaction.
	KCommit Kind = 14
	// KDeadlineMiss: transaction aborted at its deadline. Tx = id.
	KDeadlineMiss Kind = 15
	// KOp: one data operation performed (after lock grant).
	// Tx = transaction, Obj = object, A = mode.
	KOp Kind = 16
	// KCPUDispatch: a request starts (or resumes) on the processor.
	// Tx = pid, A = remaining service (ticks).
	KCPUDispatch Kind = 17
	// KCPUPreempt: the running request is preempted. Tx = pid,
	// A = remaining service (ticks).
	KCPUPreempt Kind = 18
	// KMsgSend: message sent. Site = sender, A = destination site,
	// Note = port.
	KMsgSend Kind = 19
	// KMsgRecv: message delivered. Site = destination, A = sender
	// site, Note = port.
	KMsgRecv Kind = 20
	// KTwoPCPrepare: coordinator sends prepare. Tx = transaction,
	// Site = coordinator, A = participant site.
	KTwoPCPrepare Kind = 21
	// KTwoPCVote: participant votes. Tx = transaction,
	// Site = participant, A = 1 commit / 0 abort.
	KTwoPCVote Kind = 22
	// KTwoPCDecision: decision at a site. Tx = transaction,
	// Site = deciding/receiving site, A = 1 commit / 0 abort.
	KTwoPCDecision Kind = 23
	// KInstall: an update installed at a replica (local-ceiling
	// replication). Tx = transaction, Site = replica, Obj = object.
	KInstall Kind = 24
	// KInstallDrop: an install message gave up (timeout/site down).
	// Tx = transaction, Site = replica, Obj = object.
	KInstallDrop Kind = 25
	// KCeiling: the system ceiling at a site changed. Site = site,
	// A = new ceiling deadline, B = new ceiling tie-break id
	// (MaxInt64 values mean "no ceiling").
	KCeiling Kind = 26
	// KSiteCrash: a site crashed (volatile state lost, WAL survives).
	// Site = crashed site, A = scheduled recovery time in ticks
	// (-1 when the site never recovers within the plan).
	KSiteCrash Kind = 27
	// KSiteRecover: a crashed site came back up. Site = site.
	KSiteRecover Kind = 28
	// KPartition: a symmetric network partition started. A = bitmask
	// of the sites in group A (sites must be < 64); everything else is
	// group B.
	KPartition Kind = 29
	// KHeal: a partition healed. A = the bitmask it was opened with.
	KHeal Kind = 30
	// KMsgDrop: a message was lost. Site = intended destination,
	// A = sender site, B = reason (1 = destination down, 2 = link cut
	// by a partition, 3 = injected fault), Note = port.
	KMsgDrop Kind = 31
	// KMsgDup: a message was duplicated by the fault injector.
	// Site = sender, A = destination site, B = total delivered copies,
	// Note = port.
	KMsgDup Kind = 32
	// KFailover: a transaction registered with its home site's
	// failover ceiling manager because the global manager's site was
	// down. Tx = transaction, Site = home site.
	KFailover Kind = 33
	// KResync: global ceiling manager state reconciled with a fault.
	// Site = GCM site, A = number of registrations purged,
	// B = the crashed/recovered site, Note = "evict" (a participant
	// site crashed) or "resync" (the GCM site itself recovered).
	KResync Kind = 34
	// KRetry: a bounded retry on a synchronous fault path (2PC
	// prepare re-send or decision resolution). Tx = transaction,
	// Site = retrying site, A = attempt number, Note = phase.
	KRetry Kind = 35
	// KWALRedo: recovery replayed the write-ahead log. Site = site,
	// A = number of pending (undecided) votes restored.
	KWALRedo Kind = 36
	// KChoice: a schedule-exploration chooser overrode a scheduling
	// decision point. A = decision point kind (sim.ChoicePoint), B =
	// alternative index picked (never 0: canonical picks are not
	// recorded, so a chooser that always picks canonically leaves the
	// journal byte-identical to a chooser-less run). Note = point name.
	KChoice Kind = 37
	// KFaultCrash: fault-space exploration chose to crash a site (the
	// standard KSiteCrash sequence follows immediately). Site = crashed
	// site, A = scheduled recovery time in ticks (-1 = never). Emitted
	// identically when a chosen fault plan is replayed without a
	// chooser, so counterexample and plan replay stay byte-identical.
	KFaultCrash Kind = 38
	// KFaultFate: fault-space exploration chose a message fate.
	// Site = sender, Tx = inter-site message ordinal (the injector's
	// consult counter), A = destination site, B = fate (1 = drop,
	// 2 = duplicate).
	KFaultFate Kind = 39
	// KFaultCut: fault-space exploration chose to partition one site
	// away from the rest (KPartition/KHeal pairs follow). Site =
	// isolated site, A = partition bitmask, B = scheduled heal time in
	// ticks (-1 = never).
	KFaultCut Kind = 40
	// KRetryExhausted: a bounded retry loop ran out of attempts without
	// resolution; the caller degrades (presumed abort / in-doubt until
	// recovery) instead of spinning. Tx = transaction, Site = retrying
	// site, A = attempts consumed, Note = phase ("prepare"/"resolve").
	KRetryExhausted Kind = 41
	// KPlacement: a run-level placement announcement emitted once at
	// load time. A = placement policy (place.Policy), B = read quorum
	// R in the low 32 bits and write quorum W in the high 32 bits (0
	// for non-quorum policies), Note = the canonical placement string,
	// suffixed with "; serializability waived" for the uncoordinated
	// primary-only baseline.
	KPlacement Kind = 42
	// KQuorumWrite: a write quorum round completed. Tx = writer,
	// Obj = object, Site = coordinating primary, A = the committed
	// version sequence number, B = acks collected (>= W).
	KQuorumWrite Kind = 43
	// KQuorumRead: a read quorum round completed. Tx = reader,
	// Obj = object, Site = coordinating primary, A = the highest
	// version sequence number observed across the quorum, B = replies
	// collected (>= R).
	KQuorumRead Kind = 44
)

var kindNames = map[Kind]string{
	KSpawn:          "spawn",
	KProcEnd:        "procend",
	KArrive:         "arrive",
	KRegister:       "register",
	KUnregister:     "unregister",
	KLockRequest:    "lockreq",
	KLockGrant:      "lockgrant",
	KLockBlock:      "lockblock",
	KBlame:          "blame",
	KLockRelease:    "lockrel",
	KInherit:        "inherit",
	KWound:          "wound",
	KRestart:        "restart",
	KCommit:         "commit",
	KDeadlineMiss:   "miss",
	KOp:             "op",
	KCPUDispatch:    "dispatch",
	KCPUPreempt:     "preempt",
	KMsgSend:        "send",
	KMsgRecv:        "recv",
	KTwoPCPrepare:   "prepare",
	KTwoPCVote:      "vote",
	KTwoPCDecision:  "decision",
	KInstall:        "install",
	KInstallDrop:    "installdrop",
	KCeiling:        "ceiling",
	KSiteCrash:      "sitecrash",
	KSiteRecover:    "siterecover",
	KPartition:      "partition",
	KHeal:           "heal",
	KMsgDrop:        "msgdrop",
	KMsgDup:         "msgdup",
	KFailover:       "failover",
	KResync:         "resync",
	KRetry:          "retry",
	KWALRedo:        "walredo",
	KChoice:         "choice",
	KFaultCrash:     "faultcrash",
	KFaultFate:      "faultfate",
	KFaultCut:       "faultcut",
	KRetryExhausted: "retryexhausted",
	KPlacement:      "placement",
	KQuorumWrite:    "quorumwrite",
	KQuorumRead:     "quorumread",
}

var kindValues = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String returns the canonical lower-case name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString maps a canonical name back to its Kind.
func KindFromString(s string) (Kind, bool) {
	k, ok := kindValues[s]
	return k, ok
}

// Record is one journal entry. Seq is assigned by Append and is dense
// (0, 1, 2, ...); At is the virtual time in ticks. Site/Tx/Obj identify
// the actors (0 / -1 style sentinels per kind); A and B carry
// kind-specific payloads documented on the Kind constants.
type Record struct {
	Seq  uint64 `json:"seq"`
	At   int64  `json:"at"`
	Kind Kind   `json:"-"`
	Site int32  `json:"site"`
	Tx   int64  `json:"tx"`
	Obj  int32  `json:"obj"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
	Note string `json:"note,omitempty"`
}

// jsonRecord is Record with the kind spelled out, giving the JSONL form
// a fixed field order via struct-order marshaling.
type jsonRecord struct {
	Seq  uint64 `json:"seq"`
	At   int64  `json:"at"`
	Kind string `json:"kind"`
	Site int32  `json:"site"`
	Tx   int64  `json:"tx"`
	Obj  int32  `json:"obj"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
	Note string `json:"note,omitempty"`
}

// Journal accumulates the records of one simulation run, keyed by the
// run's seed and a canonical configuration string.
type Journal struct {
	seed    int64
	config  string
	records []Record

	// encBuf is the reusable binary-encoding scratch shared by Hash and
	// EncodeBinary, so hashing a journal at end of run allocates only on
	// first use (or growth). Sharing it is safe under the single-owner
	// rule stated above: a Journal is never used concurrently.
	encBuf []byte
}

// New returns an empty journal for the given seed and canonical config
// string. The config string should be a stable rendering of every
// parameter that shapes the run (protocol, sizes, rates, ...).
func New(seed int64, config string) *Journal {
	return &Journal{seed: seed, config: config}
}

// Seed returns the run seed the journal is keyed by.
func (j *Journal) Seed() int64 {
	if j == nil {
		return 0
	}
	return j.seed
}

// Config returns the canonical config string.
func (j *Journal) Config() string {
	if j == nil {
		return ""
	}
	return j.config
}

// ConfigHash returns the FNV-64a hash of the config string; together
// with the seed it keys the journal. The hash is computed inline
// (identical constants and byte order to hash/fnv) so the encode path,
// which rehashes the config on every call, stays allocation-free.
func (j *Journal) ConfigHash() uint64 {
	if j == nil {
		return 0
	}
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	h := uint64(fnvOffset64)
	for i := 0; i < len(j.config); i++ {
		h ^= uint64(j.config[i])
		h *= fnvPrime64
	}
	return h
}

// Reserve grows the record buffer to hold at least n records without
// further allocation, batching what would otherwise be a chain of
// append regrowths on the hot path. It never shrinks.
func (j *Journal) Reserve(n int) {
	if j == nil || cap(j.records) >= n {
		return
	}
	records := make([]Record, len(j.records), n)
	copy(records, j.records)
	j.records = records
}

// Reset rekeys the journal and drops its records while keeping the
// record and encoding buffers, so one journal can be recycled across
// many runs (the schedule explorer executes hundreds per exploration).
func (j *Journal) Reset(seed int64, config string) {
	if j == nil {
		return
	}
	j.seed = seed
	j.config = config
	// Notes hold the only pointers in a Record; clear them so recycled
	// journals don't pin strings from prior runs.
	for i := range j.records {
		j.records[i].Note = ""
	}
	j.records = j.records[:0]
}

// Append adds one record, assigning its sequence number. It is safe to
// call on a nil journal (a no-op), so emission sites need no nil
// checks.
//
//rtlint:allocfree
func (j *Journal) Append(at int64, kind Kind, site int32, tx int64, obj int32, a, b int64, note string) {
	if j == nil {
		return
	}
	j.records = append(j.records, Record{
		Seq:  uint64(len(j.records)),
		At:   at,
		Kind: kind,
		Site: site,
		Tx:   tx,
		Obj:  obj,
		A:    a,
		B:    b,
		Note: note,
	})
}

// Len returns the number of records.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return len(j.records)
}

// Records returns the record slice. Callers must not mutate it.
func (j *Journal) Records() []Record {
	if j == nil {
		return nil
	}
	return j.records
}

// binaryMagic opens the canonical binary encoding.
const binaryMagic = "RTJ1"

// EncodeBinary writes the canonical binary form: a fixed magic,
// the (seed, config hash, record count) key, then each record as
// varint-packed fields. The encoding is byte-stable: the same record
// sequence always produces the same bytes.
//
//rtlint:allocfree
func (j *Journal) EncodeBinary(w io.Writer) error {
	j.encBuf = j.appendBinary(j.encBuf[:0])
	_, err := w.Write(j.encBuf)
	return err
}

// appendBinary appends the canonical binary encoding to buf, reusing
// buf's capacity.
//
//rtlint:allocfree
func (j *Journal) appendBinary(buf []byte) []byte {
	buf = append(buf, binaryMagic...)
	buf = binary.AppendVarint(buf, j.Seed())
	buf = binary.AppendUvarint(buf, j.ConfigHash())
	buf = binary.AppendUvarint(buf, uint64(j.Len()))
	for i := range j.Records() {
		r := &j.records[i]
		buf = binary.AppendVarint(buf, r.At)
		buf = append(buf, byte(r.Kind))
		buf = binary.AppendVarint(buf, int64(r.Site))
		buf = binary.AppendVarint(buf, r.Tx)
		buf = binary.AppendVarint(buf, int64(r.Obj))
		buf = binary.AppendVarint(buf, r.A)
		buf = binary.AppendVarint(buf, r.B)
		buf = binary.AppendUvarint(buf, uint64(len(r.Note)))
		buf = append(buf, r.Note...)
	}
	return buf
}

// Hash returns the SHA-256 digest of the canonical binary encoding.
// Two runs are provably identical when their hashes match.
func (j *Journal) Hash() [32]byte {
	j.encBuf = j.appendBinary(j.encBuf[:0])
	return sha256.Sum256(j.encBuf)
}

// HashString returns Hash as lower-case hex.
func (j *Journal) HashString() string {
	h := j.Hash()
	return fmt.Sprintf("%x", h[:])
}

// jsonHeader is the first line of the JSONL encoding.
type jsonHeader struct {
	V          int    `json:"v"`
	Seed       int64  `json:"seed"`
	Config     string `json:"config"`
	ConfigHash string `json:"confighash"`
	Records    int    `json:"records"`
}

// EncodeJSONL writes the canonical JSONL form: one header line with the
// journal key, then one line per record with a fixed field order. Like
// the binary form it is byte-stable for a given record sequence.
func (j *Journal) EncodeJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := jsonHeader{
		V:          1,
		Seed:       j.Seed(),
		Config:     j.Config(),
		ConfigHash: fmt.Sprintf("%016x", j.ConfigHash()),
		Records:    j.Len(),
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for i := range j.Records() {
		r := &j.records[i]
		jr := jsonRecord{
			Seq: r.Seq, At: r.At, Kind: r.Kind.String(),
			Site: r.Site, Tx: r.Tx, Obj: r.Obj, A: r.A, B: r.B,
			Note: r.Note,
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads a journal previously written by EncodeJSONL.
func DecodeJSONL(r io.Reader) (*Journal, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("journal: empty input")
	}
	var hdr jsonHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("journal: bad header: %w", err)
	}
	if hdr.V != 1 {
		return nil, fmt.Errorf("journal: unsupported version %d", hdr.V)
	}
	j := New(hdr.Seed, hdr.Config)
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal(sc.Bytes(), &jr); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", line, err)
		}
		kind, ok := KindFromString(jr.Kind)
		if !ok {
			return nil, fmt.Errorf("journal: line %d: unknown kind %q", line, jr.Kind)
		}
		j.records = append(j.records, Record{
			Seq: jr.Seq, At: jr.At, Kind: kind,
			Site: jr.Site, Tx: jr.Tx, Obj: jr.Obj, A: jr.A, B: jr.B,
			Note: jr.Note,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if hdr.Records != len(j.records) {
		return nil, fmt.Errorf("journal: header says %d records, read %d", hdr.Records, len(j.records))
	}
	return j, nil
}

// Equal reports whether two journals have the same key and identical
// record sequences. It is the in-memory form of byte-identity: Equal
// journals produce identical binary and JSONL encodings.
func Equal(a, b *Journal) bool {
	if a.Seed() != b.Seed() || a.Config() != b.Config() || a.Len() != b.Len() {
		return false
	}
	ar, br := a.Records(), b.Records()
	for i := range ar {
		if ar[i] != br[i] {
			return false
		}
	}
	return true
}

// Diff returns a short description of the first divergence between two
// journals, or "" when they are Equal. It exists to make determinism
// test failures actionable.
func Diff(a, b *Journal) string {
	if a.Seed() != b.Seed() {
		return fmt.Sprintf("seed %d vs %d", a.Seed(), b.Seed())
	}
	if a.Config() != b.Config() {
		return "config strings differ"
	}
	ar, br := a.Records(), b.Records()
	n := len(ar)
	if len(br) < n {
		n = len(br)
	}
	for i := 0; i < n; i++ {
		if ar[i] != br[i] {
			return fmt.Sprintf("record %d: %+v vs %+v", i, ar[i], br[i])
		}
	}
	if len(ar) != len(br) {
		return fmt.Sprintf("length %d vs %d", len(ar), len(br))
	}
	return ""
}

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto). Times are microseconds, which matches
// simulation ticks one-to-one.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int32          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// EncodeChromeTrace writes the journal in Chrome trace_event JSON
// format for visual inspection in chrome://tracing or Perfetto.
// Transactions become "threads" (tid = transaction id) of their site's
// "process"; attempts and lock-wait intervals render as duration
// events, everything else as instant events.
func (j *Journal) EncodeChromeTrace(w io.Writer) error {
	var evs []chromeEvent
	type key struct {
		tx  int64
		obj int32
	}
	type open struct {
		at   int64
		site int32
	}
	blockStart := map[key]open{}
	attemptStart := map[int64]open{}
	for i := range j.Records() {
		r := &j.records[i]
		switch r.Kind {
		case KArrive:
			attemptStart[r.Tx] = open{at: r.At, site: r.Site}
		case KCommit, KDeadlineMiss, KRestart:
			if s, ok := attemptStart[r.Tx]; ok {
				name := "attempt:" + r.Kind.String()
				evs = append(evs, chromeEvent{
					Name: name, Cat: "txn", Ph: "X",
					Ts: s.at, Dur: maxInt64(r.At-s.at, 1),
					Pid: s.site, Tid: r.Tx,
				})
				delete(attemptStart, r.Tx)
			}
		case KLockBlock:
			blockStart[key{r.Tx, r.Obj}] = open{at: r.At, site: r.Site}
		case KLockGrant:
			if s, ok := blockStart[key{r.Tx, r.Obj}]; ok {
				evs = append(evs, chromeEvent{
					Name: fmt.Sprintf("wait obj %d", r.Obj), Cat: "lock", Ph: "X",
					Ts: s.at, Dur: maxInt64(r.At-s.at, 1),
					Pid: s.site, Tid: r.Tx,
				})
				delete(blockStart, key{r.Tx, r.Obj})
			}
		}
		switch r.Kind {
		case KArrive, KLockBlock: // interval starts handled above
		default:
			evs = append(evs, chromeEvent{
				Name: r.Kind.String(), Cat: "journal", Ph: "i",
				Ts: r.At, Pid: r.Site, Tid: r.Tx, S: "t",
				Args: map[string]any{"obj": r.Obj, "a": r.A, "b": r.B, "seq": r.Seq},
			})
		}
	}
	// Deterministic output order: by timestamp, then original sequence
	// (the args carry seq, and append order already follows it).
	sort.SliceStable(evs, func(i, k int) bool { return evs[i].Ts < evs[k].Ts })
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range evs {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
