package journal

import (
	"io"
	"testing"
)

// TestAppendZeroAlloc is the allocation-regression gate for the journal
// hot path: with the record buffer reserved, Append must not allocate.
// The journal is the busiest single data structure in a journaled run
// (every kernel, lock, and transaction event lands here), so even one
// allocation per record would dominate the profile.
func TestAppendZeroAlloc(t *testing.T) {
	j := New(7, "alloc-gate")
	const capRecords = 4096
	j.Reserve(capRecords)
	var at int64
	allocs := testing.AllocsPerRun(2*capRecords, func() {
		j.Append(at, KLockRequest, 0, at, 1, 0, 0, "")
		at++
		if j.Len() == capRecords {
			j.Reset(7, "alloc-gate")
		}
	})
	if allocs != 0 {
		t.Fatalf("Append allocated %.1f times per record; want 0", allocs)
	}
}

// TestEncodeBinarySteadyStateZeroAlloc gates the batched encoder: the
// encode buffer is retained across calls, so re-encoding an unchanged
// journal (the explorer hashes every schedule) must not allocate.
func TestEncodeBinarySteadyStateZeroAlloc(t *testing.T) {
	j := New(7, "alloc-gate")
	for i := int64(0); i < 512; i++ {
		j.Append(i, KOp, 0, i%8, int32(i%16), i, 0, "")
	}
	if err := j.EncodeBinary(io.Discard); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := j.EncodeBinary(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeBinary allocated %.1f times per call after warmup; want 0", allocs)
	}
}
