package rtlock

import (
	"runtime"
	"testing"
)

// timelineTestConfig is a small contended run with windowed telemetry.
func timelineTestConfig() SingleSiteConfig {
	cfg := SingleSiteConfig{Protocol: TwoPL, DBSize: 40,
		TimelineWindow: 2 * Second, MaxRawRecords: 32}
	cfg.Workload.Seed = 7
	cfg.Workload.Count = 120
	return cfg
}

func timelineExports(t *testing.T, res *Result) map[string][]byte {
	t.Helper()
	if res.Timeline == nil {
		t.Fatal("TimelineWindow did not populate Result.Timeline")
	}
	return map[string][]byte{
		"jsonl": TimelineJSONL(res.Timeline),
		"csv":   TimelineCSV(res.Timeline),
		"html":  HTMLTimelineReport("test", nil, nil, res.Timeline),
	}
}

func TestTimelineDeterministicAcrossRuns(t *testing.T) {
	res1, err := RunSingleSite(timelineTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := timelineExports(t, res1)
	if len(first["jsonl"]) == 0 || len(first["csv"]) == 0 {
		t.Fatal("exports are empty")
	}
	for r := 2; r <= 3; r++ {
		res, err := RunSingleSite(timelineTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		compareExports(t, "run", first, timelineExports(t, res))
	}
}

func TestTimelineDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var first map[string][]byte
	for _, p := range []int{1, 8} {
		runtime.GOMAXPROCS(p)
		res, err := RunSingleSite(timelineTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		exp := timelineExports(t, res)
		if first == nil {
			first = exp
			continue
		}
		compareExports(t, "GOMAXPROCS", first, exp)
	}
}

// TestTimelineZeroOverhead proves windowed telemetry cannot perturb the
// simulation: the replay journal of a timeline-enabled run (with the
// raw record cap engaged) is record-identical to that of a run that
// never saw a collector.
func TestTimelineZeroOverhead(t *testing.T) {
	with := timelineTestConfig()
	with.Journal = true
	without := with
	without.TimelineWindow = 0
	without.MaxRawRecords = 0

	rw, err := RunSingleSite(with)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := RunSingleSite(without)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Journal == nil || ro.Journal == nil {
		t.Fatal("journals missing")
	}
	if !JournalsEqual(rw.Journal, ro.Journal) {
		t.Fatalf("timeline perturbed the run: %s", JournalDiff(ro.Journal, rw.Journal))
	}
	if rw.RawDropped == 0 {
		t.Fatal("raw record cap never engaged — the proof exercised nothing")
	}
}

// TestTimelineOnlyRunHasNoMetricsOrJournal pins the bounded-memory
// contract: a timeline-only run gets windows but neither a journal nor
// a user-visible registry.
func TestTimelineOnlyRunHasNoMetricsOrJournal(t *testing.T) {
	res, err := RunSingleSite(timelineTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline windows")
	}
	if res.Journal != nil {
		t.Fatal("timeline-only run created a journal")
	}
	if res.Metrics != nil {
		t.Fatal("timeline-only run leaked the private probe registry")
	}
	if res.RawRetained > 32 {
		t.Fatalf("retained %d raw records past cap 32", res.RawRetained)
	}
}

// TestSketchParityAcrossProtocols runs every protocol's bench shape
// twice — once with full raw retention (the exact percentile path) and
// once with the cap engaged (the sketch path) — and requires the
// sketched P50/P99 to land within one sketch bucket of the exact
// values. The cap cannot change the simulation, so any difference is
// pure sketch error.
func TestSketchParityAcrossProtocols(t *testing.T) {
	protocols := []Protocol{Ceiling, CeilingExclusive, TwoPLPriority, TwoPL,
		TwoPLInherit, TwoPLHighPriority, TwoPLDetect, TimestampOrdering, TwoPLConditional}
	const bucket = Millisecond // stats.DefaultSketchWidth
	for _, proto := range protocols {
		cfg := SingleSiteConfig{Protocol: proto, DBSize: 40}
		cfg.Workload.Seed = 11
		cfg.Workload.Count = 150

		exact, err := RunSingleSite(cfg)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		capped := cfg
		capped.MaxRawRecords = 16
		sketched, err := RunSingleSite(capped)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if sketched.RawDropped == 0 {
			t.Fatalf("%s: cap never engaged", proto)
		}
		for _, q := range []struct {
			name      string
			want, got Duration
		}{
			{"p50", exact.Summary.RespP50, sketched.Summary.RespP50},
			{"p99", exact.Summary.RespP99, sketched.Summary.RespP99},
		} {
			diff := q.got - q.want
			if diff < 0 {
				diff = -diff
			}
			if diff > bucket {
				t.Errorf("%s: sketch %s = %v vs exact %v (diff %v > one bucket)",
					proto, q.name, q.got, q.want, diff)
			}
		}
	}
}
