package rtlock_test

// Determinism property tests: the replay journal of a run is a complete
// transcript of kernel-level events, so byte-identical journals across
// repeated runs of the same (seed, config) prove the simulation is
// deterministic. Every protocol and both distributed architectures are
// checked, both across repeated runs and across GOMAXPROCS settings
// (the kernel executes one process at a time regardless of P).

import (
	"bytes"
	"runtime"
	"testing"

	"rtlock"
)

var allProtocols = []rtlock.Protocol{
	rtlock.Ceiling,
	rtlock.CeilingExclusive,
	rtlock.TwoPLPriority,
	rtlock.TwoPL,
	rtlock.TwoPLInherit,
	rtlock.TwoPLHighPriority,
	rtlock.TwoPLDetect,
	rtlock.TimestampOrdering,
	rtlock.TwoPLConditional,
}

// singleJournal runs one audited single-site simulation and returns its
// journal, failing the test on invariant violations.
func singleJournal(t *testing.T, proto rtlock.Protocol, seed int64) *rtlock.Journal {
	t.Helper()
	res, err := rtlock.RunSingleSite(rtlock.SingleSiteConfig{
		Protocol: proto,
		Audit:    true,
		Workload: rtlock.WorkloadConfig{Seed: seed, Count: 120},
	})
	if err != nil {
		t.Fatalf("%s: %v", proto, err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s: %s", proto, v)
	}
	if res.Journal == nil || res.Journal.Len() == 0 {
		t.Fatalf("%s: empty journal", proto)
	}
	return res.Journal
}

// distJournal runs one audited distributed simulation and returns its
// journal.
func distJournal(t *testing.T, global bool, seed int64) *rtlock.Journal {
	t.Helper()
	res, err := rtlock.RunDistributed(rtlock.DistributedConfig{
		Global:   global,
		Audit:    true,
		Workload: rtlock.WorkloadConfig{Seed: seed, Count: 120},
	})
	if err != nil {
		t.Fatalf("global=%t: %v", global, err)
	}
	for _, v := range res.Violations {
		t.Errorf("global=%t: %s", global, v)
	}
	if res.Journal == nil || res.Journal.Len() == 0 {
		t.Fatalf("global=%t: empty journal", global)
	}
	return res.Journal
}

// placedPolicies are the placement policies with their own execution
// models (full replication reuses the local-ceiling path tested above).
var placedPolicies = []string{"shard", "quorum", "primary"}

// placedJournal runs one audited placement simulation and returns its
// journal.
func placedJournal(t *testing.T, placement string, seed int64) *rtlock.Journal {
	t.Helper()
	res, err := rtlock.RunDistributed(rtlock.DistributedConfig{
		Placement: placement,
		Sites:     4,
		Audit:     true,
		Workload:  rtlock.WorkloadConfig{Seed: seed, Count: 120, LocalityProb: 0.7},
	})
	if err != nil {
		t.Fatalf("placement=%s: %v", placement, err)
	}
	for _, v := range res.Violations {
		t.Errorf("placement=%s: %s", placement, v)
	}
	if res.Journal == nil || res.Journal.Len() == 0 {
		t.Fatalf("placement=%s: empty journal", placement)
	}
	return res.Journal
}

// TestJournalDeterminismSingleSite checks that three runs of every
// protocol at the same (seed, config) produce byte-identical journals.
func TestJournalDeterminismSingleSite(t *testing.T) {
	for _, proto := range allProtocols {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			base := singleJournal(t, proto, 42)
			for run := 2; run <= 3; run++ {
				j := singleJournal(t, proto, 42)
				if j.Hash() != base.Hash() || !rtlock.JournalsEqual(base, j) {
					t.Fatalf("run %d diverged: %s", run, rtlock.JournalDiff(base, j))
				}
			}
		})
	}
}

// TestJournalDeterminismDistributed is the distributed analogue, for
// both the global-ceiling-manager and local-ceiling architectures.
func TestJournalDeterminismDistributed(t *testing.T) {
	for _, mode := range []struct {
		name   string
		global bool
	}{{"global", true}, {"local", false}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			base := distJournal(t, mode.global, 42)
			for run := 2; run <= 3; run++ {
				j := distJournal(t, mode.global, 42)
				if j.Hash() != base.Hash() || !rtlock.JournalsEqual(base, j) {
					t.Fatalf("run %d diverged: %s", run, rtlock.JournalDiff(base, j))
				}
			}
		})
	}
}

// TestJournalDeterminismAcrossGOMAXPROCS re-runs every configuration
// under GOMAXPROCS=1 and GOMAXPROCS=8 and requires identical journals:
// scheduling must come from the simulated clock, never from the Go
// runtime. Must not run in parallel with other tests (it mutates the
// process-wide GOMAXPROCS).
func TestJournalDeterminismAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	withP := func(p int, f func() *rtlock.Journal) *rtlock.Journal {
		runtime.GOMAXPROCS(p)
		return f()
	}
	for _, proto := range allProtocols {
		j1 := withP(1, func() *rtlock.Journal { return singleJournal(t, proto, 7) })
		j8 := withP(8, func() *rtlock.Journal { return singleJournal(t, proto, 7) })
		if !rtlock.JournalsEqual(j1, j8) {
			t.Errorf("%s: GOMAXPROCS=1 vs 8 diverged: %s", proto, rtlock.JournalDiff(j1, j8))
		}
	}
	for _, global := range []bool{true, false} {
		j1 := withP(1, func() *rtlock.Journal { return distJournal(t, global, 7) })
		j8 := withP(8, func() *rtlock.Journal { return distJournal(t, global, 7) })
		if !rtlock.JournalsEqual(j1, j8) {
			t.Errorf("dist global=%t: GOMAXPROCS=1 vs 8 diverged: %s", global, rtlock.JournalDiff(j1, j8))
		}
	}
}

// TestJournalDeterminismPlacement extends the repeated-run and
// GOMAXPROCS byte-identity properties to the placement execution
// models (sharded 2PC, quorum replication, uncoordinated
// primary-only).
func TestJournalDeterminismPlacement(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	withP := func(p int, f func() *rtlock.Journal) *rtlock.Journal {
		runtime.GOMAXPROCS(p)
		return f()
	}
	for _, pl := range placedPolicies {
		base := placedJournal(t, pl, 42)
		for run := 2; run <= 3; run++ {
			j := placedJournal(t, pl, 42)
			if j.Hash() != base.Hash() || !rtlock.JournalsEqual(base, j) {
				t.Fatalf("%s run %d diverged: %s", pl, run, rtlock.JournalDiff(base, j))
			}
		}
		j1 := withP(1, func() *rtlock.Journal { return placedJournal(t, pl, 7) })
		j8 := withP(8, func() *rtlock.Journal { return placedJournal(t, pl, 7) })
		if !rtlock.JournalsEqual(j1, j8) {
			t.Errorf("%s: GOMAXPROCS=1 vs 8 diverged: %s", pl, rtlock.JournalDiff(j1, j8))
		}
	}
}

// TestCommitSetsDeterministic checks the commit-set diagnostic: two runs
// of the same configuration commit exactly the same transactions, and a
// journal JSONL round trip preserves identity.
func TestCommitSetsDeterministic(t *testing.T) {
	a := distJournal(t, true, 11)
	b := distJournal(t, true, 11)
	if onlyA, onlyB := rtlock.CompareCommitSets(a, b); len(onlyA) != 0 || len(onlyB) != 0 {
		t.Fatalf("commit sets differ between identical runs: onlyA=%v onlyB=%v", onlyA, onlyB)
	}
	var buf bytes.Buffer
	if err := a.EncodeJSONL(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := rtlock.DecodeJournalJSONL(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !rtlock.JournalsEqual(a, dec) {
		t.Fatalf("JSONL round trip diverged: %s", rtlock.JournalDiff(a, dec))
	}
}
