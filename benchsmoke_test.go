package rtlock

// A short benchmark smoke run for CI: when BENCH_OUT names a file, a
// handful of representative workloads are timed once each and the
// wall-clock results written as JSON, so every PR leaves a comparable
// performance record without the cost of a full -bench sweep. When
// BENCH_BASE names a previously committed smoke JSON, each line is
// compared against it and the test fails on a >10% regression —
// wall-clock lines must not get slower, the explorer must not get
// slower in schedules/sec, and the allocation line must not grow.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"rtlock/internal/experiments"
)

type benchSmokeResult struct {
	Name            string  `json:"name"`
	Millis          float64 `json:"ms"`
	Committed       int     `json:"committed,omitempty"`
	Records         int     `json:"journalRecords,omitempty"`
	Schedules       int     `json:"schedules,omitempty"`
	SchedulesPerSec float64 `json:"schedulesPerSec,omitempty"`
	AllocsPerTx     float64 `json:"allocsPerTx,omitempty"`
}

func TestBenchSmoke(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("set BENCH_OUT=<file> to write the benchmark smoke JSON")
	}
	var results []benchSmokeResult
	// Each line reports the best of three runs: one-shot wall-clock
	// numbers on a shared CI runner vary by far more than the 10%
	// regression slack, while the per-line minimum is stable — the
	// fastest run is the one least disturbed by unrelated load.
	const benchRuns = 3
	timed := func(name string, run func() (committed, records int)) {
		best := benchSmokeResult{Name: name}
		for i := 0; i < benchRuns; i++ {
			start := time.Now()
			committed, records := run()
			ms := float64(time.Since(start).Microseconds()) / 1000
			if i == 0 || ms < best.Millis {
				best.Millis = ms
				best.Committed = committed
				best.Records = records
			}
		}
		results = append(results, best)
	}
	timed("single/C/plain", func() (int, int) {
		res, err := RunSingleSite(SingleSiteConfig{Workload: WorkloadConfig{Count: 200}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.Committed, 0
	})
	timed("single/C/journal", func() (int, int) {
		res, err := RunSingleSite(SingleSiteConfig{Journal: true, Workload: WorkloadConfig{Count: 200}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.Committed, res.Journal.Len()
	})
	timed("single/HP/audit", func() (int, int) {
		res, err := RunSingleSite(SingleSiteConfig{Protocol: TwoPLHighPriority, Audit: true,
			Workload: WorkloadConfig{Count: 200}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res.Summary.Committed, res.Journal.Len()
	})
	timed("dist/local/audit", func() (int, int) {
		res, err := RunDistributed(DistributedConfig{Audit: true,
			Workload: WorkloadConfig{Count: 150}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res.Summary.Committed, res.Journal.Len()
	})
	timed("dist/global/audit", func() (int, int) {
		res, err := RunDistributed(DistributedConfig{Global: true, Audit: true,
			Workload: WorkloadConfig{Count: 150}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res.Summary.Committed, res.Journal.Len()
	})
	timed("dist/shard/audit", func() (int, int) {
		res, err := RunDistributed(DistributedConfig{Placement: "shard", Sites: 4, Audit: true,
			Workload: WorkloadConfig{Count: 150, LocalityProb: 0.7}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res.Summary.Committed, res.Journal.Len()
	})
	timed("dist/quorum/audit", func() (int, int) {
		res, err := RunDistributed(DistributedConfig{Placement: "quorum", Sites: 4, Audit: true,
			Workload: WorkloadConfig{Count: 150, LocalityProb: 0.7}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res.Summary.Committed, res.Journal.Len()
	})
	// The streaming soak: a million bursty transactions through the
	// windowed-telemetry path in bounded memory. One run, not best of
	// three — at this length the wall clock is stable and three runs
	// would dominate the whole smoke.
	{
		start := time.Now()
		res, err := experiments.LongRun(experiments.LongRunParams{})
		if err != nil {
			t.Fatal(err)
		}
		if res.RawRetained > 4096 {
			t.Fatalf("stream soak retained %d raw records past the cap", res.RawRetained)
		}
		results = append(results, benchSmokeResult{
			Name:      "single/C/stream",
			Millis:    float64(time.Since(start).Microseconds()) / 1000,
			Committed: res.Summary.Committed,
			Records:   len(res.Timeline),
		})
	}
	// Explorer throughput: schedules executed per wall-clock second at
	// the CI smoke shape (DFS, 4 workers); best of three runs.
	{
		best := benchSmokeResult{Name: "explore/single/C"}
		for i := 0; i < benchRuns; i++ {
			start := time.Now()
			rep, err := Explore(ExploreConfig{
				Protocol: Ceiling,
				Options:  ExploreOptions{Strategy: ExploreDFS, Schedules: 64, MaxDepth: 16, Branch: 2, Workers: 4},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Counterexamples) > 0 {
				t.Fatalf("explore counterexamples: %s", rep.Summary())
			}
			elapsed := time.Since(start)
			perSec := float64(rep.Explored) / elapsed.Seconds()
			if i == 0 || perSec > best.SchedulesPerSec {
				best.Millis = float64(elapsed.Microseconds()) / 1000
				best.Schedules = rep.Explored
				best.SchedulesPerSec = perSec
			}
		}
		results = append(results, best)
	}
	// Steady-state allocation cost per transaction on the journaled
	// single-site path (warm run measured, see alloc_gate_test.go).
	{
		cfg := SingleSiteConfig{Journal: true, Workload: WorkloadConfig{Count: 200}}
		if _, err := RunSingleSite(cfg); err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := RunSingleSite(cfg); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		results = append(results, benchSmokeResult{
			Name:        "alloc/single/C/journal",
			Millis:      float64(elapsed.Microseconds()) / 1000,
			AllocsPerTx: float64(after.Mallocs-before.Mallocs) / float64(cfg.Workload.Count),
		})
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
	if base := os.Getenv("BENCH_BASE"); base != "" {
		compareBenchSmoke(t, base, results)
	}
}

// compareBenchSmoke fails the test when any line regresses more than
// 10% against the baseline smoke JSON: wall-clock lines by ms, the
// explorer by schedules/sec, the allocation line by allocs/tx. Lines
// present in only one of the two files are reported but not fatal, so
// adding a new benchmark does not break the first comparison run.
func compareBenchSmoke(t *testing.T, basePath string, results []benchSmokeResult) {
	t.Helper()
	raw, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatalf("BENCH_BASE: %v", err)
	}
	var baseline []benchSmokeResult
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("BENCH_BASE %s: %v", basePath, err)
	}
	baseByName := make(map[string]benchSmokeResult, len(baseline))
	for _, b := range baseline {
		baseByName[b.Name] = b
	}
	const slack = 1.10
	for _, r := range results {
		b, ok := baseByName[r.Name]
		if !ok {
			t.Logf("%s: no baseline line in %s (new benchmark, skipping)", r.Name, basePath)
			continue
		}
		type dim struct {
			what       string
			base, got  float64
			lowerIsBad bool // true when a drop is the regression
		}
		var checks []dim
		switch {
		case r.SchedulesPerSec > 0 || b.SchedulesPerSec > 0:
			checks = append(checks, dim{"schedules/sec", b.SchedulesPerSec, r.SchedulesPerSec, true})
		case r.AllocsPerTx > 0 || b.AllocsPerTx > 0:
			checks = append(checks, dim{"allocs/tx", b.AllocsPerTx, r.AllocsPerTx, false})
		default:
			checks = append(checks, dim{"ms", b.Millis, r.Millis, false})
		}
		for _, c := range checks {
			if c.base <= 0 {
				continue
			}
			var regressed bool
			if c.lowerIsBad {
				regressed = c.got < c.base/slack
			} else {
				regressed = c.got > c.base*slack
			}
			msg := fmt.Sprintf("%s: %s %.2f vs baseline %.2f", r.Name, c.what, c.got, c.base)
			if regressed {
				t.Errorf("regression >10%%: %s", msg)
			} else {
				t.Logf("ok: %s", msg)
			}
		}
	}
}
