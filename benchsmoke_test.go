package rtlock

// A short benchmark smoke run for CI: when BENCH_OUT names a file, a
// handful of representative workloads are timed once each and the
// wall-clock results written as JSON, so every PR leaves a comparable
// performance record without the cost of a full -bench sweep.

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

type benchSmokeResult struct {
	Name            string  `json:"name"`
	Millis          float64 `json:"ms"`
	Committed       int     `json:"committed,omitempty"`
	Records         int     `json:"journalRecords,omitempty"`
	Schedules       int     `json:"schedules,omitempty"`
	SchedulesPerSec float64 `json:"schedulesPerSec,omitempty"`
}

func TestBenchSmoke(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("set BENCH_OUT=<file> to write the benchmark smoke JSON")
	}
	var results []benchSmokeResult
	timed := func(name string, run func() (committed, records int)) {
		start := time.Now()
		committed, records := run()
		results = append(results, benchSmokeResult{
			Name:      name,
			Millis:    float64(time.Since(start).Microseconds()) / 1000,
			Committed: committed,
			Records:   records,
		})
	}
	timed("single/C/plain", func() (int, int) {
		res, err := RunSingleSite(SingleSiteConfig{Workload: WorkloadConfig{Count: 200}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.Committed, 0
	})
	timed("single/C/journal", func() (int, int) {
		res, err := RunSingleSite(SingleSiteConfig{Journal: true, Workload: WorkloadConfig{Count: 200}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.Committed, res.Journal.Len()
	})
	timed("single/HP/audit", func() (int, int) {
		res, err := RunSingleSite(SingleSiteConfig{Protocol: TwoPLHighPriority, Audit: true,
			Workload: WorkloadConfig{Count: 200}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res.Summary.Committed, res.Journal.Len()
	})
	timed("dist/local/audit", func() (int, int) {
		res, err := RunDistributed(DistributedConfig{Audit: true,
			Workload: WorkloadConfig{Count: 150}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res.Summary.Committed, res.Journal.Len()
	})
	timed("dist/global/audit", func() (int, int) {
		res, err := RunDistributed(DistributedConfig{Global: true, Audit: true,
			Workload: WorkloadConfig{Count: 150}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res.Summary.Committed, res.Journal.Len()
	})
	// Explorer throughput: schedules executed per wall-clock second at
	// the CI smoke shape (DFS, 4 workers).
	{
		start := time.Now()
		rep, err := Explore(ExploreConfig{
			Protocol: Ceiling,
			Options:  ExploreOptions{Strategy: ExploreDFS, Schedules: 64, MaxDepth: 16, Branch: 2, Workers: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Counterexamples) > 0 {
			t.Fatalf("explore counterexamples: %s", rep.Summary())
		}
		elapsed := time.Since(start)
		results = append(results, benchSmokeResult{
			Name:            "explore/single/C",
			Millis:          float64(elapsed.Microseconds()) / 1000,
			Schedules:       rep.Explored,
			SchedulesPerSec: float64(rep.Explored) / elapsed.Seconds(),
		})
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
