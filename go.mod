module rtlock

go 1.22
