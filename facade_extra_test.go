package rtlock

import "testing"

func TestRunDistributedMultiversion(t *testing.T) {
	wl := WorkloadConfig{Count: 120, MeanSize: 5, ReadOnlyFrac: 0.6}
	res, err := RunDistributed(DistributedConfig{
		Multiversion: true,
		Workload:     wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replication == nil {
		t.Fatal("missing replication stats")
	}
	classified := res.Replication.ConsistentViews + res.Replication.InconsistentViews
	if classified == 0 {
		t.Fatal("no read-only views classified")
	}
}

func TestRunDistributedWithTopology(t *testing.T) {
	topo, err := NewStar(3, 0, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDistributed(DistributedConfig{
		Global:   true,
		Topology: topo,
		Workload: WorkloadConfig{Count: 60, MeanSize: 4, MeanInterarrival: 120 * Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Processed != 60 {
		t.Fatalf("processed %d", res.Summary.Processed)
	}
	// Mismatched topology must be rejected.
	bad, err := NewRing(5, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDistributed(DistributedConfig{Topology: bad, Sites: 3}); err == nil {
		t.Fatal("mismatched topology accepted")
	}
}

func TestRunSingleSiteIODisksSlowDown(t *testing.T) {
	// Bounding I/O parallelism to one disk must not speed anything up.
	wl := WorkloadConfig{Count: 100, MeanSize: 8, Seed: 5}
	free, err := RunSingleSite(SingleSiteConfig{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	oneDisk, err := RunSingleSite(SingleSiteConfig{Workload: wl, IODisks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if oneDisk.Summary.MissedPct < free.Summary.MissedPct {
		t.Fatalf("one disk missed %.1f%% < unbounded %.1f%%",
			oneDisk.Summary.MissedPct, free.Summary.MissedPct)
	}
	if oneDisk.Summary.AvgResp < free.Summary.AvgResp {
		t.Fatalf("one disk responded faster (%v < %v)",
			oneDisk.Summary.AvgResp, free.Summary.AvgResp)
	}
}

func TestRunSingleSiteBufferSpeedsUp(t *testing.T) {
	wl := WorkloadConfig{Count: 150, MeanSize: 14, Seed: 5}
	plain, err := RunSingleSite(SingleSiteConfig{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := RunSingleSite(SingleSiteConfig{Workload: wl, BufferPages: 200})
	if err != nil {
		t.Fatal(err)
	}
	if buffered.Summary.MissedPct > plain.Summary.MissedPct {
		t.Fatalf("full buffer missed %.1f%% > unbuffered %.1f%%",
			buffered.Summary.MissedPct, plain.Summary.MissedPct)
	}
}

func TestConditionalRestartProtocolRuns(t *testing.T) {
	res, err := RunSingleSite(SingleSiteConfig{
		Protocol:      TwoPLConditional,
		Workload:      WorkloadConfig{Count: 150, MeanSize: 12},
		RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Serializable == nil || !*res.Serializable {
		t.Fatal("CR history not serializable")
	}
}

func TestAllProtocolsProcessEverything(t *testing.T) {
	wl := WorkloadConfig{Count: 100, MeanSize: 10, Seed: 3}
	for _, proto := range []Protocol{
		Ceiling, CeilingExclusive, TwoPLPriority, TwoPL, TwoPLInherit,
		TwoPLHighPriority, TwoPLConditional, TwoPLDetect, TimestampOrdering,
	} {
		res, err := RunSingleSite(SingleSiteConfig{Protocol: proto, Workload: wl})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if res.Summary.Processed != 100 {
			t.Fatalf("%s processed %d/100 — transactions leaked", proto, res.Summary.Processed)
		}
	}
}

func TestDistributedSiteFailure(t *testing.T) {
	// Light load and a small delay, so the healthy global baseline
	// performs well and the outage's damage is unambiguous.
	wl := WorkloadConfig{Count: 100, MeanSize: 4, Seed: 7, MeanInterarrival: 120 * Millisecond}
	delay := 5 * Millisecond
	fail := []SiteFailure{{Site: 0, At: 0}} // GCM down the whole run
	healthy, err := RunDistributed(DistributedConfig{Global: true, CommDelay: delay, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	failed, err := RunDistributed(DistributedConfig{Global: true, CommDelay: delay, Workload: wl, Failures: fail})
	if err != nil {
		t.Fatal(err)
	}
	if failed.Summary.MissedPct <= healthy.Summary.MissedPct {
		t.Fatalf("GCM outage did not hurt: %.1f%% vs %.1f%%",
			failed.Summary.MissedPct, healthy.Summary.MissedPct)
	}
	// The local approach shrugs the same failure off.
	local, err := RunDistributed(DistributedConfig{CommDelay: delay, Workload: wl, Failures: fail})
	if err != nil {
		t.Fatal(err)
	}
	if local.Summary.MissedPct >= failed.Summary.MissedPct {
		t.Fatalf("local approach %.1f%% not below failed-global %.1f%%",
			local.Summary.MissedPct, failed.Summary.MissedPct)
	}
}

func TestWALThroughFacade(t *testing.T) {
	res, err := RunSingleSite(SingleSiteConfig{
		WAL:             true,
		CheckpointEvery: 500 * Millisecond,
		Workload:        WorkloadConfig{Count: 80, MeanSize: 6, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery == nil {
		t.Fatal("WAL run missing recovery info")
	}
	if res.Recovery.Records == 0 {
		t.Fatal("no commit records forced")
	}
	if res.Recovery.Checkpoints == 0 {
		t.Fatal("checkpointer never ran")
	}
	if res.Recovery.EstimatedRestart <= 0 {
		t.Fatalf("restart estimate %v", res.Recovery.EstimatedRestart)
	}
	// WAL off: no recovery info.
	plain, err := RunSingleSite(SingleSiteConfig{Workload: WorkloadConfig{Count: 20, MeanSize: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Recovery != nil {
		t.Fatal("non-WAL run reported recovery info")
	}
}

func TestSummaryPercentilesPopulated(t *testing.T) {
	res, err := RunSingleSite(SingleSiteConfig{Workload: WorkloadConfig{Count: 100, MeanSize: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.RespP50 <= 0 || res.Summary.RespP99 < res.Summary.RespP50 {
		t.Fatalf("percentiles p50=%v p99=%v", res.Summary.RespP50, res.Summary.RespP99)
	}
	if res.Summary.CPUUtil <= 0 || res.Summary.CPUUtil > 1.01 {
		t.Fatalf("cpu util %v", res.Summary.CPUUtil)
	}
}
