package rtlock

import (
	"os"
	"path/filepath"
	"testing"
)

const singleSpec = `{
  "mode": "single",
  "protocol": "C",
  "dbSize": 100,
  "cpuPerObjMs": 10,
  "memoryResident": true,
  "recordHistory": true,
  "traceEvents": 50,
  "workload": {"seed": 3, "count": 40, "meanSize": 5}
}`

const distSpec = `{
  "mode": "distributed",
  "sites": 3,
  "commDelayMs": 15,
  "workload": {"seed": 3, "count": 40, "meanSize": 5, "readOnlyFrac": 0.5}
}`

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(singleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode != "single" || s.Protocol != "C" || s.DBSize != 100 {
		t.Fatalf("spec = %+v", s)
	}
}

func TestParseSpecRejectsBad(t *testing.T) {
	cases := []string{
		`{`,                                    // malformed JSON
		`{"mode": "weird"}`,                    // bad mode
		`{"mode": "single", "protocol": "ZZ"}`, // unknown protocol
		`{"mode": "single", "workload": {"readOnlyFrac": 2}}`,        // bad fraction
		`{"mode": "distributed", "workload": {"readOnlyFrac": -.1}}`, // bad fraction
	}
	for i, c := range cases {
		if _, err := ParseSpec([]byte(c)); err == nil {
			t.Fatalf("case %d accepted: %s", i, c)
		}
	}
}

func TestSpecRunSingleWithTrace(t *testing.T) {
	s, err := ParseSpec([]byte(singleSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Processed != 40 {
		t.Fatalf("processed = %d", res.Summary.Processed)
	}
	if res.Serializable == nil || !*res.Serializable {
		t.Fatal("history missing or not serializable")
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("trace not recorded")
	}
	if res.Trace.Len() > 50 {
		t.Fatalf("trace exceeded cap: %d", res.Trace.Len())
	}
	// Every transaction in the trace has an arrival before anything
	// else.
	tl := res.Trace.Timeline(1)
	if len(tl) == 0 || tl[0].Kind != TraceEventArrive {
		t.Fatalf("tx1 timeline starts with %+v", tl)
	}
}

func TestSpecRunDistributed(t *testing.T) {
	s, err := ParseSpec([]byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Processed != 40 {
		t.Fatalf("processed = %d", res.Summary.Processed)
	}
	if res.Replication == nil {
		t.Fatal("local distributed run missing replication stats")
	}
}

func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	if err := os.WriteFile(path, []byte(singleSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Protocol != "C" {
		t.Fatalf("spec = %+v", s)
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSpecDeterministicAcrossRuns(t *testing.T) {
	run := func() Summary {
		s, err := ParseSpec([]byte(distSpec))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("spec runs diverged: %+v vs %+v", a, b)
	}
}
