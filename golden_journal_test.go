package rtlock

// Golden byte-identity tests: the canonical binary journal of every
// protocol and both distributed architectures is pinned to committed
// fixtures under testdata/journals/. The hot-path optimizations (event
// pooling, index heap, batched encoding, choice-point elision) are only
// legal because these bytes cannot move; any divergence from the
// pre-optimization encodings fails here with the first differing record.
//
// Regenerate (only when an intentional journal-format change lands):
//
//	RTLOCK_REGEN_GOLDEN=1 go test -run TestGoldenJournals .

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rtlock/internal/journal"
)

// goldenProtocols lists all nine single-site protocols.
var goldenProtocols = []Protocol{
	Ceiling, CeilingExclusive, TwoPLPriority, TwoPL, TwoPLInherit,
	TwoPLHighPriority, TwoPLDetect, TimestampOrdering, TwoPLConditional,
}

// goldenSingle runs the fixture-sized single-site workload for one
// protocol. Small enough to keep fixtures compact, large enough that
// blocking, inheritance, restarts, and deadline misses all occur.
func goldenSingle(t testing.TB, p Protocol) *journal.Journal {
	t.Helper()
	res, err := RunSingleSite(SingleSiteConfig{
		Protocol: p,
		Journal:  true,
		Workload: WorkloadConfig{Count: 60, MeanSize: 8, ReadOnlyFrac: 0.3},
	})
	if err != nil {
		t.Fatalf("single-site %s: %v", p, err)
	}
	return res.Journal
}

// goldenDist runs the fixture-sized distributed workload for one
// architecture.
func goldenDist(t testing.TB, global bool) *journal.Journal {
	t.Helper()
	res, err := RunDistributed(DistributedConfig{
		Global:   global,
		Journal:  true,
		Workload: WorkloadConfig{Count: 40, MeanSize: 4},
	})
	if err != nil {
		t.Fatalf("distributed global=%t: %v", global, err)
	}
	return res.Journal
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "journals", name+".bin")
}

// checkGolden encodes jrn canonically and compares it byte-for-byte
// against the committed fixture (or rewrites the fixture when
// RTLOCK_REGEN_GOLDEN is set).
func checkGolden(t *testing.T, name string, jrn *journal.Journal) {
	t.Helper()
	var buf bytes.Buffer
	if err := jrn.EncodeBinary(&buf); err != nil {
		t.Fatalf("encode %s: %v", name, err)
	}
	got := buf.Bytes()
	path := goldenPath(name)
	if os.Getenv("RTLOCK_REGEN_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes, %d records)", path, len(got), jrn.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture %s (run with RTLOCK_REGEN_GOLDEN=1 to create): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Bytes diverged: decode nothing, but point at the first divergent
	// offset and record so the failure is actionable.
	off := 0
	for off < len(got) && off < len(want) && got[off] == want[off] {
		off++
	}
	t.Errorf("%s: journal bytes diverged from fixture at offset %d (got %d bytes, want %d); first divergent record context: %s",
		name, off, len(got), len(want), describeRecordAt(jrn, off))
}

// describeRecordAt re-encodes the journal record by record to find which
// record covers byte offset off, making byte-level failures readable.
func describeRecordAt(jrn *journal.Journal, off int) string {
	var buf bytes.Buffer
	if err := jrn.EncodeBinary(&buf); err != nil {
		return "encode error"
	}
	// Binary layout: magic + header varints, then records. Walk by
	// re-encoding prefixes; cheap at fixture sizes.
	recs := jrn.Records()
	for i := range recs {
		sub := journal.New(jrn.Seed(), jrn.Config())
		for j := 0; j <= i; j++ {
			r := recs[j]
			sub.Append(r.At, r.Kind, r.Site, r.Tx, r.Obj, r.A, r.B, r.Note)
		}
		var sb bytes.Buffer
		if err := sub.EncodeBinary(&sb); err != nil {
			return "encode error"
		}
		if sb.Len() > off {
			return fmt.Sprintf("record %d: %+v", i, recs[i])
		}
	}
	return "past last record (length divergence)"
}

// TestGoldenJournals pins the canonical journal bytes of all nine
// protocols and both distributed architectures to committed fixtures.
func TestGoldenJournals(t *testing.T) {
	for _, p := range goldenProtocols {
		p := p
		t.Run("single/"+string(p), func(t *testing.T) {
			t.Parallel()
			checkGolden(t, "single_"+string(p), goldenSingle(t, p))
		})
	}
	t.Run("dist/local", func(t *testing.T) {
		t.Parallel()
		checkGolden(t, "dist_local", goldenDist(t, false))
	})
	t.Run("dist/global", func(t *testing.T) {
		t.Parallel()
		checkGolden(t, "dist_global", goldenDist(t, true))
	})
}
