package rtlock

// Golden byte-identity tests: the canonical binary journal of every
// protocol and both distributed architectures is pinned to committed
// fixtures under testdata/journals/. The hot-path optimizations (event
// pooling, index heap, batched encoding, choice-point elision) are only
// legal because these bytes cannot move; any divergence from the
// pre-optimization encodings fails here with the first differing record.
//
// Regenerate (only when an intentional journal-format change lands):
//
//	RTLOCK_REGEN_GOLDEN=1 go test -run TestGoldenJournals .

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rtlock/internal/journal"
)

// goldenProtocols lists all nine single-site protocols.
var goldenProtocols = []Protocol{
	Ceiling, CeilingExclusive, TwoPLPriority, TwoPL, TwoPLInherit,
	TwoPLHighPriority, TwoPLDetect, TimestampOrdering, TwoPLConditional,
}

// goldenSingle runs the fixture-sized single-site workload for one
// protocol. Small enough to keep fixtures compact, large enough that
// blocking, inheritance, restarts, and deadline misses all occur.
func goldenSingle(t testing.TB, p Protocol) *journal.Journal {
	t.Helper()
	res, err := RunSingleSite(SingleSiteConfig{
		Protocol: p,
		Journal:  true,
		Workload: WorkloadConfig{Count: 60, MeanSize: 8, ReadOnlyFrac: 0.3},
	})
	if err != nil {
		t.Fatalf("single-site %s: %v", p, err)
	}
	return res.Journal
}

// goldenDist runs the fixture-sized distributed workload for one
// architecture.
func goldenDist(t testing.TB, global bool) *journal.Journal {
	t.Helper()
	res, err := RunDistributed(DistributedConfig{
		Global:   global,
		Journal:  true,
		Workload: WorkloadConfig{Count: 40, MeanSize: 4},
	})
	if err != nil {
		t.Fatalf("distributed global=%t: %v", global, err)
	}
	return res.Journal
}

// goldenPlaced runs the fixture-sized workload under a placement
// policy. Pinning these bytes freezes the KPlacement banner encoding,
// the KQuorumRead/KQuorumWrite round records, and the shard
// registration/2PC interleavings the placement auditors replay.
func goldenPlaced(t testing.TB, placement string) *journal.Journal {
	t.Helper()
	res, err := RunDistributed(DistributedConfig{
		Placement: placement,
		Sites:     3,
		Journal:   true,
		Workload:  WorkloadConfig{Count: 40, MeanSize: 4, LocalityProb: 0.7},
	})
	if err != nil {
		t.Fatalf("placement %s: %v", placement, err)
	}
	return res.Journal
}

// goldenDistFaults replays a pinned chosen-fault plan — the shape a
// fault-space exploration exports for a counterexample: a concrete
// crash, two message fates, and a partition cut. The hand-built load
// steers 2PC traffic through the fault windows so pinning the journal
// bytes freezes the KFaultCrash/KFaultFate/KFaultCut record encodings
// and the crash-recovery machinery's journal behavior (WAL-forced
// votes, redo on recovery, resolver retries, retry exhaustion) that
// counterexample replay depends on.
func goldenDistFaults(t testing.TB) *journal.Journal {
	t.Helper()
	plan, err := ParseFaultPlan([]byte(`{"chosen":{` +
		`"crashes":[{"site":1,"at":100000,"recover_at":800000}],` +
		`"fates":[{"msg":1,"from":1,"to":0,"fate":1},{"msg":4,"from":0,"to":1,"fate":2}],` +
		`"cuts":[{"site":2,"at":300000,"heal_at":360000}]}}`))
	if err != nil {
		t.Fatalf("pinned fault plan: %v", err)
	}
	// Sites 0/1/2 hold objects 0-2/3-5/6-8. Each transaction writes one
	// remote primary, so each commits through 2PC: tx 1 before the
	// crash (its vote message is also fate-dropped), tx 2 votes at site
	// 1 just before the crash window swallows the decision (in doubt
	// across recovery → WAL redo + resolver), tx 3 prepares toward the
	// down site until its bounded retries exhaust, tx 4 commits across
	// the partition cut.
	res, err := RunDistributed(DistributedConfig{
		Global:    true,
		Sites:     3,
		DBSize:    9,
		CommDelay: 10 * Millisecond,
		CPUPerObj: 2 * Millisecond,
		Journal:   true,
		Faults:    plan,
		Workload: WorkloadConfig{Transactions: []*Txn{
			{ID: 1, Kind: Update, Home: 0, Arrival: 0, Deadline: Time(1 * Second),
				Ops: []Op{{Obj: 0, Mode: Write}, {Obj: 3, Mode: Write}}},
			{ID: 2, Kind: Update, Home: 0, Arrival: Time(80 * Millisecond), Deadline: Time(1500 * Millisecond),
				Ops: []Op{{Obj: 4, Mode: Write}}},
			{ID: 3, Kind: Update, Home: 2, Arrival: Time(110 * Millisecond), Deadline: Time(1600 * Millisecond),
				Ops: []Op{{Obj: 5, Mode: Write}}},
			{ID: 4, Kind: Update, Home: 0, Arrival: Time(290 * Millisecond), Deadline: Time(2 * Second),
				Ops: []Op{{Obj: 6, Mode: Write}}},
		}},
	})
	if err != nil {
		t.Fatalf("distributed fault replay: %v", err)
	}
	return res.Journal
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "journals", name+".bin")
}

// checkGolden encodes jrn canonically and compares it byte-for-byte
// against the committed fixture (or rewrites the fixture when
// RTLOCK_REGEN_GOLDEN is set).
func checkGolden(t *testing.T, name string, jrn *journal.Journal) {
	t.Helper()
	var buf bytes.Buffer
	if err := jrn.EncodeBinary(&buf); err != nil {
		t.Fatalf("encode %s: %v", name, err)
	}
	got := buf.Bytes()
	path := goldenPath(name)
	if os.Getenv("RTLOCK_REGEN_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes, %d records)", path, len(got), jrn.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture %s (run with RTLOCK_REGEN_GOLDEN=1 to create): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Bytes diverged: decode nothing, but point at the first divergent
	// offset and record so the failure is actionable.
	off := 0
	for off < len(got) && off < len(want) && got[off] == want[off] {
		off++
	}
	t.Errorf("%s: journal bytes diverged from fixture at offset %d (got %d bytes, want %d); first divergent record context: %s",
		name, off, len(got), len(want), describeRecordAt(jrn, off))
}

// describeRecordAt re-encodes the journal record by record to find which
// record covers byte offset off, making byte-level failures readable.
func describeRecordAt(jrn *journal.Journal, off int) string {
	var buf bytes.Buffer
	if err := jrn.EncodeBinary(&buf); err != nil {
		return "encode error"
	}
	// Binary layout: magic + header varints, then records. Walk by
	// re-encoding prefixes; cheap at fixture sizes.
	recs := jrn.Records()
	for i := range recs {
		sub := journal.New(jrn.Seed(), jrn.Config())
		for j := 0; j <= i; j++ {
			r := recs[j]
			sub.Append(r.At, r.Kind, r.Site, r.Tx, r.Obj, r.A, r.B, r.Note)
		}
		var sb bytes.Buffer
		if err := sub.EncodeBinary(&sb); err != nil {
			return "encode error"
		}
		if sb.Len() > off {
			return fmt.Sprintf("record %d: %+v", i, recs[i])
		}
	}
	return "past last record (length divergence)"
}

// TestGoldenJournals pins the canonical journal bytes of all nine
// protocols and both distributed architectures to committed fixtures.
func TestGoldenJournals(t *testing.T) {
	for _, p := range goldenProtocols {
		p := p
		t.Run("single/"+string(p), func(t *testing.T) {
			t.Parallel()
			checkGolden(t, "single_"+string(p), goldenSingle(t, p))
		})
	}
	t.Run("dist/local", func(t *testing.T) {
		t.Parallel()
		checkGolden(t, "dist_local", goldenDist(t, false))
	})
	t.Run("dist/global", func(t *testing.T) {
		t.Parallel()
		checkGolden(t, "dist_global", goldenDist(t, true))
	})
	t.Run("dist/global-faults", func(t *testing.T) {
		t.Parallel()
		checkGolden(t, "dist_global_faults", goldenDistFaults(t))
	})
	for _, pl := range []string{"shard", "quorum", "primary"} {
		pl := pl
		t.Run("dist/"+pl, func(t *testing.T) {
			t.Parallel()
			checkGolden(t, "dist_"+pl, goldenPlaced(t, pl))
		})
	}
}
