package rtlock_test

// Determinism under fault injection: an attached fault plan is part of
// the configuration, so repeated runs of the same (seed, config, plan)
// must still produce byte-identical journals — crashes, retries,
// resolution and failover included — and an attached-but-empty plan
// must reproduce the fault-free journal exactly.

import (
	"runtime"
	"testing"

	"rtlock"
)

// faultedJournal runs one audited distributed simulation under a
// generated fault plan and returns its journal.
func faultedJournal(t *testing.T, global bool, seed int64) *rtlock.Journal {
	t.Helper()
	// Mean interarrival 30ms × 120 transactions: fault windows land
	// inside the first ~3.6s of simulated time.
	plan, err := rtlock.GenerateFaultPlan(seed, rtlock.FaultGenParams{
		Sites:    3,
		Horizon:  120 * 30 * int64(rtlock.Millisecond),
		Severity: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty() {
		t.Fatal("generated plan is empty at severity 0.6")
	}
	res, err := rtlock.RunDistributed(rtlock.DistributedConfig{
		Global:   global,
		Audit:    true,
		Faults:   plan,
		Workload: rtlock.WorkloadConfig{Seed: seed, Count: 120},
	})
	if err != nil {
		t.Fatalf("global=%t: %v", global, err)
	}
	for _, v := range res.Violations {
		t.Errorf("global=%t: %s", global, v)
	}
	if res.Journal == nil || res.Journal.Len() == 0 {
		t.Fatalf("global=%t: empty journal", global)
	}
	return res.Journal
}

func TestJournalDeterminismUnderFaults(t *testing.T) {
	for _, global := range []bool{true, false} {
		base := faultedJournal(t, global, 42)
		for run := 2; run <= 3; run++ {
			j := faultedJournal(t, global, 42)
			if !rtlock.JournalsEqual(base, j) {
				t.Fatalf("global=%t: faulted run %d diverged:\n%s",
					global, run, rtlock.JournalDiff(base, j))
			}
		}
	}
}

func TestJournalDeterminismUnderFaultsAcrossGOMAXPROCS(t *testing.T) {
	withP := func(p int, f func() *rtlock.Journal) *rtlock.Journal {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(p))
		return f()
	}
	for _, global := range []bool{true, false} {
		j1 := withP(1, func() *rtlock.Journal { return faultedJournal(t, global, 7) })
		j8 := withP(8, func() *rtlock.Journal { return faultedJournal(t, global, 7) })
		if !rtlock.JournalsEqual(j1, j8) {
			t.Fatalf("global=%t: GOMAXPROCS changed a faulted journal:\n%s",
				global, rtlock.JournalDiff(j1, j8))
		}
	}
}

// TestEmptyFaultPlanEquivalence proves the fault machinery is inert
// when the plan is empty: attaching one reproduces the fault-free
// journal byte for byte, config hash included.
func TestEmptyFaultPlanEquivalence(t *testing.T) {
	for _, global := range []bool{true, false} {
		run := func(faulted bool) *rtlock.Journal {
			cfg := rtlock.DistributedConfig{
				Global:   global,
				Audit:    true,
				Workload: rtlock.WorkloadConfig{Seed: 11, Count: 120},
			}
			if faulted {
				cfg.Faults = &rtlock.FaultPlan{}
			}
			res, err := rtlock.RunDistributed(cfg)
			if err != nil {
				t.Fatalf("global=%t: %v", global, err)
			}
			return res.Journal
		}
		plain, attached := run(false), run(true)
		if plain.Hash() != attached.Hash() {
			t.Fatalf("global=%t: empty plan perturbed the journal:\n%s",
				global, rtlock.JournalDiff(plain, attached))
		}
	}
}
