// Tracking models the paper's motivating application (§4): a distributed
// tracking system in which each radar station periodically updates its
// local view (primary copies of its tracks) and makes it available to
// the other stations as read-only replicas — the single-writer,
// multiple-readers model behind the local ceiling approach.
//
// The example runs the same scenario under both distributed
// architectures and reports deadline misses, message traffic, and — for
// the local approach — the temporal inconsistency (stale reads and
// average lag) that restriction 3 trades for responsiveness.
package main

import (
	"fmt"
	"log"

	"rtlock"
)

func main() {
	workload := rtlock.WorkloadConfig{
		Seed:         7,
		Count:        600,
		MeanSize:     6,
		ReadOnlyFrac: 0.5, // half queries, half track updates
		PeriodicFrac: 0.8, // most updates come from repetitive scans
	}
	fmt.Println("Distributed tracking: 3 radar stations, fully replicated track")
	fmt.Println("database, periodic track updates plus ad-hoc queries, 20ms")
	fmt.Println("communication delay, hard deadlines.")
	fmt.Println()
	for _, global := range []bool{true, false} {
		res, err := rtlock.RunDistributed(rtlock.DistributedConfig{
			Global:    global,
			CommDelay: 20 * rtlock.Millisecond,
			Workload:  workload,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := "local ceilings + replication"
		if global {
			name = "global ceiling manager"
		}
		fmt.Printf("%-29s %s messages=%d\n", name, res.Summary, res.Messages)
		if res.Replication != nil {
			r := res.Replication
			stalePct := 0.0
			avgLag := 0.0
			if r.ReadSamples > 0 {
				stalePct = 100 * float64(r.StaleReads) / float64(r.ReadSamples)
			}
			if r.StaleReads > 0 {
				avgLag = (r.TotalLag / rtlock.Duration(r.StaleReads)).Millis()
			}
			fmt.Printf("%-29s installs=%d drops=%d stale reads=%.1f%% avg lag=%.1fms\n",
				"", r.Installs, r.InstallDrops, stalePct, avgLag)
		}
	}
	fmt.Println()
	fmt.Println("The local approach misses far fewer deadlines; the price is")
	fmt.Println("temporal inconsistency: some queries read track views that lag the")
	fmt.Println("owning station's primary copy by the propagation delay.")
}
