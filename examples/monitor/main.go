// Monitor demonstrates the performance monitor: it runs a small
// contended workload under the priority ceiling protocol and prints the
// timeline the paper's Performance Monitor records — arrival, lock
// requests and grants (with blocked intervals), operation completions,
// and commit or deadline-miss, per transaction — followed by the
// deterministic virtual-time metrics the same run sampled and the
// journal-derived lock-contention profile.
package main

import (
	"fmt"
	"log"

	"rtlock"
)

func main() {
	txs := []*rtlock.Txn{
		// A long background transaction locks objects 1..3.
		{ID: 1, Kind: rtlock.Update, Arrival: 0, Deadline: rtlock.Time(rtlock.Second),
			Ops: []rtlock.Op{
				{Obj: 1, Mode: rtlock.Write},
				{Obj: 2, Mode: rtlock.Write},
				{Obj: 3, Mode: rtlock.Write},
			}},
		// An urgent transaction needs object 1 and is ceiling-blocked.
		{ID: 2, Kind: rtlock.Update, Arrival: rtlock.Time(15 * rtlock.Millisecond),
			Deadline: rtlock.Time(200 * rtlock.Millisecond),
			Ops:      []rtlock.Op{{Obj: 1, Mode: rtlock.Write}}},
		// A reader of unrelated object 9 is blocked by the ceiling too
		// — the "insurance premium" in action.
		{ID: 3, Kind: rtlock.ReadOnly, Arrival: rtlock.Time(20 * rtlock.Millisecond),
			Deadline: rtlock.Time(500 * rtlock.Millisecond),
			Ops:      []rtlock.Op{{Obj: 9, Mode: rtlock.Read}}},
	}
	res, err := rtlock.RunSingleSite(rtlock.SingleSiteConfig{
		Protocol:       rtlock.Ceiling,
		MemoryResident: true,
		Workload:       rtlock.WorkloadConfig{Transactions: txs},
		TraceEvents:    100,
		Metrics:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Performance monitor event log (priority ceiling protocol):")
	fmt.Println()
	fmt.Print(res.Trace.String())
	fmt.Println()
	fmt.Printf("Summary: %s\n", res.Summary)
	fmt.Println()
	fmt.Println("tx2's lock-grant line shows its blocked interval behind tx1; tx3")
	fmt.Println("was ceiling-blocked on an unlocked object — the protocol's")
	fmt.Println("insurance premium against deadlock and chained blocking.")
	fmt.Println()
	fmt.Println("Virtual-time metrics (final registry state):")
	fmt.Print(res.Metrics.FinalString())
	fmt.Println()
	fmt.Print(res.LockProfile.String())
}
