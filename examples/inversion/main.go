// Inversion demonstrates the unbounded priority inversion of §3.1 with
// the paper's own three-transaction scenario, and how the priority
// ceiling protocol bounds it.
//
// T1 (highest priority) needs object O1, which low-priority T3 locked
// first. Under plain priority two-phase locking, the medium-priority
// transactions — which touch no shared data at all — preempt T3 on the
// CPU and delay it, so T1's blocking stretches for as long as
// medium-priority work keeps arriving. With priority inheritance T3
// runs at T1's priority while it blocks T1, bounding the inversion; the
// ceiling protocol gives the same bound plus deadlock freedom and
// block-at-most-once.
package main

import (
	"fmt"
	"log"

	"rtlock"
)

func scenario() []*rtlock.Txn {
	ms := func(n int64) rtlock.Time { return rtlock.Time(n) * rtlock.Time(rtlock.Millisecond) }
	txs := []*rtlock.Txn{
		// T3: low priority (latest deadline), grabs O1 first and then
		// works through 8 objects × 10ms of CPU while holding it.
		{ID: 3, Kind: rtlock.Update, Arrival: 0, Deadline: ms(5000),
			Ops: []rtlock.Op{{Obj: 1, Mode: rtlock.Write}, {Obj: 11, Mode: rtlock.Write},
				{Obj: 12, Mode: rtlock.Write}, {Obj: 13, Mode: rtlock.Write},
				{Obj: 14, Mode: rtlock.Write}, {Obj: 15, Mode: rtlock.Write},
				{Obj: 16, Mode: rtlock.Write}, {Obj: 17, Mode: rtlock.Write}}},
		// T1: highest priority, arrives shortly after and needs O1.
		{ID: 1, Kind: rtlock.Update, Arrival: ms(15), Deadline: ms(150),
			Ops: []rtlock.Op{{Obj: 1, Mode: rtlock.Write}}},
	}
	// A steady stream of medium-priority transactions on unrelated
	// objects: 2 objects × 10ms CPU every 30ms. They never touch O1,
	// yet under plain priority 2PL they preempt T3 and stretch T1's
	// wait indefinitely.
	for i := int64(0); i < 12; i++ {
		txs = append(txs, &rtlock.Txn{
			ID: 10 + i, Kind: rtlock.Update,
			Arrival:  ms(20 + 30*i),
			Deadline: ms(600 + 30*i),
			Ops: []rtlock.Op{
				{Obj: rtlock.ObjectID(50 + 2*i), Mode: rtlock.Write},
				{Obj: rtlock.ObjectID(51 + 2*i), Mode: rtlock.Write},
			},
		})
	}
	return txs
}

func run(proto rtlock.Protocol) *rtlock.Result {
	res, err := rtlock.RunSingleSite(rtlock.SingleSiteConfig{
		Protocol:       proto,
		MemoryResident: true,
		Workload:       rtlock.WorkloadConfig{Transactions: scenario()},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Priority inversion: T1 (urgent, 150ms deadline) needs O1 held by T3")
	fmt.Println("(background), while unrelated medium-priority transactions keep")
	fmt.Println("arriving and preempting T3.")
	fmt.Println()
	for _, proto := range []rtlock.Protocol{
		rtlock.TwoPLPriority, rtlock.TwoPLInherit, rtlock.Ceiling,
	} {
		res := run(proto)
		for _, rec := range res.Records {
			if rec.ID != 1 {
				continue
			}
			outcome := "met deadline"
			if rec.Outcome != rtlock.Committed {
				outcome = "MISSED deadline"
			}
			fmt.Printf("%-3s  T1 blocked %6.1fms  finished %6.1fms  %s\n",
				proto, rec.Blocked.Millis(),
				rtlock.Duration(rec.Finish).Millis(), outcome)
		}
	}
	fmt.Println()
	fmt.Println("Under P the inversion is unbounded: every medium transaction that")
	fmt.Println("arrives extends T1's wait. Inheritance (PI) and the ceiling")
	fmt.Println("protocol (C) run T3 at T1's priority, bounding the blocking to one")
	fmt.Println("critical section.")
}
