// Failover demonstrates the prototyping environment's site-failure
// handling — "if the receiving site is not operational, a time-out
// mechanism will unblock the sender process" — and how differently the
// two distributed architectures degrade when a site becomes unreachable
// mid-run.
//
// Under the local ceiling approach, losing a remote site costs only the
// replica updates shipped to it (they are dropped); every transaction
// keeps committing against local copies. Under the global ceiling
// approach, losing the ceiling-manager site stalls every lock request
// from the other sites until its recovery: their transactions time out
// and miss wholesale.
package main

import (
	"fmt"
	"log"

	"rtlock"
)

func main() {
	workload := rtlock.WorkloadConfig{
		Seed:     9,
		Count:    400,
		MeanSize: 5,
	}
	// Site 0 (which also hosts the global ceiling manager) is
	// unreachable for the middle portion of the run.
	failure := rtlock.SiteFailure{
		Site:      0,
		At:        rtlock.Time(2 * rtlock.Second),
		RecoverAt: rtlock.Time(6 * rtlock.Second),
	}
	fmt.Println("Three sites; site 0 (the GCM site) unreachable from 2s to 6s.")
	fmt.Println()
	for _, global := range []bool{true, false} {
		res, err := rtlock.RunDistributed(rtlock.DistributedConfig{
			Global:    global,
			CommDelay: 10 * rtlock.Millisecond,
			Workload:  workload,
			Failures:  []rtlock.SiteFailure{failure},
		})
		if err != nil {
			log.Fatal(err)
		}
		name := "local ceilings + replication"
		if global {
			name = "global ceiling manager"
		}
		fmt.Printf("%-29s %s\n", name, res.Summary)
		if res.Replication != nil {
			fmt.Printf("%-29s installs=%d (updates to the down site were dropped)\n",
				"", res.Replication.Installs)
		}
	}
	fmt.Println()
	fmt.Println("The local approach degrades to stale replicas at the failed site;")
	fmt.Println("the global approach loses its single point of coordination and the")
	fmt.Println("other sites' transactions time out until recovery.")
}
