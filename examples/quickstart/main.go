// Quickstart: run the same heavily loaded single-site workload under the
// priority ceiling protocol and both two-phase locking variants, and
// compare throughput and deadline misses — the comparison at the heart
// of the paper's Figures 2 and 3.
package main

import (
	"fmt"
	"log"

	"rtlock"
)

func main() {
	workload := rtlock.WorkloadConfig{
		Seed:     42,
		Count:    400,
		MeanSize: 16, // large transactions: frequent conflicts
	}
	fmt.Println("Single-site real-time database, 200 objects, mean size 16, hard deadlines.")
	fmt.Println()
	for _, proto := range []rtlock.Protocol{rtlock.Ceiling, rtlock.TwoPLPriority, rtlock.TwoPL} {
		res, err := rtlock.RunSingleSite(rtlock.SingleSiteConfig{
			Protocol:      proto,
			Workload:      workload,
			RecordHistory: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		serial := "n/a"
		if res.Serializable != nil {
			serial = fmt.Sprintf("%t", *res.Serializable)
		}
		fmt.Printf("%-3s %s serializable=%s\n", proto, res.Summary, serial)
	}
	fmt.Println()
	fmt.Println("The ceiling protocol (C) trades some blocking for freedom from")
	fmt.Println("deadlock: at this size it misses far fewer deadlines than two-phase")
	fmt.Println("locking with (P) or without (L) priority scheduling.")
}
