// Mix sweeps the read-only/update transaction mix on a three-site system
// under both distributed ceiling architectures — a command-line
// miniature of the paper's Figure 6 — and prints the deadline-miss
// percentages side by side for two communication delays.
package main

import (
	"fmt"
	"log"

	"rtlock"
)

func main() {
	mixes := []float64{0, 0.25, 0.5, 0.75, 1}
	delays := []rtlock.Duration{20 * rtlock.Millisecond, 80 * rtlock.Millisecond}

	fmt.Println("Deadline-miss percentage by transaction mix (3 sites):")
	fmt.Printf("%-12s", "%read-only")
	for _, d := range delays {
		fmt.Printf(" %14s %14s", fmt.Sprintf("global@%gms", d.Millis()), fmt.Sprintf("local@%gms", d.Millis()))
	}
	fmt.Println()

	for _, mix := range mixes {
		fmt.Printf("%-12.0f", 100*mix)
		for _, d := range delays {
			for _, global := range []bool{true, false} {
				res, err := rtlock.RunDistributed(rtlock.DistributedConfig{
					Global:    global,
					CommDelay: d,
					Workload: rtlock.WorkloadConfig{
						Seed:         11,
						Count:        300,
						MeanSize:     6,
						ReadOnlyFrac: mix,
					},
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %13.1f%%", res.Summary.MissedPct)
			}
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Misses fall as the read-only share rises (fewer conflicts), and the")
	fmt.Println("local approach dominates at every mix — more so at larger delays.")
}
