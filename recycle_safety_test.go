package rtlock

// Aliasing/recycle safety property test for the pooled hot path. The
// fast path recycles events, wait tokens, lock waiters, transaction
// states, journals, and serializability histories; a recycle bug (stale
// field, object shared across owners, capacity carrying data over)
// would show up as a run whose journal differs depending on what ran
// before it in the same process. This test pins the opposite property:
// every configuration hashes identically no matter which — and how many
// — other configurations ran first on the same warm pools. CI runs it
// under -race and -shuffle=on, so data races on pooled objects and
// test-order dependence are caught by the same property.

import (
	"fmt"
	"testing"
)

func TestRecycleAliasingSafety(t *testing.T) {
	type shape struct {
		name string
		run  func() (string, error)
	}
	hashRun := func(cfg SingleSiteConfig) func() (string, error) {
		return func() (string, error) {
			res, err := RunSingleSite(cfg)
			if err != nil {
				return "", err
			}
			if len(res.Violations) > 0 {
				return "", fmt.Errorf("violations: %v", res.Violations)
			}
			return res.Journal.HashString(), nil
		}
	}
	hashDist := func(cfg DistributedConfig) func() (string, error) {
		return func() (string, error) {
			res, err := RunDistributed(cfg)
			if err != nil {
				return "", err
			}
			if len(res.Violations) > 0 {
				return "", fmt.Errorf("violations: %v", res.Violations)
			}
			return res.Journal.HashString(), nil
		}
	}
	// Deliberately different workload sizes and protocols, so pooled
	// objects are handed between runs whose slices have different
	// lengths — the regime where stale-capacity aliasing shows.
	shapes := []shape{
		{"single/C/audit/60", hashRun(SingleSiteConfig{Audit: true,
			Workload: WorkloadConfig{Count: 60}})},
		{"single/HP/audit/35", hashRun(SingleSiteConfig{Protocol: TwoPLHighPriority, Audit: true,
			Workload: WorkloadConfig{Count: 35}})},
		{"single/DD/journal/50", hashRun(SingleSiteConfig{Protocol: TwoPLDetect, Journal: true,
			Workload: WorkloadConfig{Count: 50}})},
		{"dist/local/audit/40", hashDist(DistributedConfig{Audit: true,
			Workload: WorkloadConfig{Count: 40}})},
		{"dist/global/audit/30", hashDist(DistributedConfig{Global: true, Audit: true,
			Workload: WorkloadConfig{Count: 30}})},
		{"explore/C", func() (string, error) {
			rep, err := Explore(ExploreConfig{
				Protocol: Ceiling,
				Options:  ExploreOptions{Strategy: ExploreDFS, Schedules: 24, MaxDepth: 12, Branch: 2, Workers: 4},
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("explored=%d distinct=%d pruned=%d ce=%d",
				rep.Explored, rep.Distinct, rep.Pruned, len(rep.Counterexamples)), nil
		}},
	}
	baseline := make(map[string]string, len(shapes))
	for _, s := range shapes {
		h, err := s.run()
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		baseline[s.name] = h
	}
	// Re-run every shape three more times, rotating the order each
	// round so each configuration inherits pools warmed by a different
	// predecessor.
	for round := 1; round <= 3; round++ {
		for i := range shapes {
			s := shapes[(i+round)%len(shapes)]
			h, err := s.run()
			if err != nil {
				t.Fatalf("round %d %s: %v", round, s.name, err)
			}
			if h != baseline[s.name] {
				t.Errorf("round %d %s: result diverged after pool reuse:\n  baseline %s\n  got      %s",
					round, s.name, baseline[s.name], h)
			}
		}
	}
}
