package rtlock

// Public surface of the deterministic replay journal and the invariant
// auditors. The journal records every kernel-level event of a run as
// compact structured records keyed by (seed, config hash); its canonical
// binary encoding is byte-identical across repeated runs of the same
// configuration, so comparing hashes *is* the determinism proof. The
// auditors consume a journal and verify protocol invariants (strict two
// phases, lock compatibility, deadlock freedom, PCP blocked-at-most-once,
// 2PC vote consistency, conflict serializability).

import (
	"fmt"
	"io"

	"rtlock/internal/audit"
	"rtlock/internal/journal"
)

type (
	// Journal is a deterministic replay journal of one run.
	Journal = journal.Journal
	// JournalRecord is one journal event.
	JournalRecord = journal.Record
	// JournalKind tags a journal record's event type.
	JournalKind = journal.Kind
	// Auditor is a streaming protocol-invariant checker.
	Auditor = audit.Auditor
	// Violation is one invariant violation found by an auditor.
	Violation = audit.Violation
)

// DecodeJournalJSONL reads a journal previously written with
// Journal.EncodeJSONL.
func DecodeJournalJSONL(r io.Reader) (*Journal, error) { return journal.DecodeJSONL(r) }

// JournalsEqual reports record-for-record identity of two journals
// (including seed and config hash).
func JournalsEqual(a, b *Journal) bool { return journal.Equal(a, b) }

// JournalDiff describes the first divergence between two journals, for
// diagnostics when JournalsEqual is false.
func JournalDiff(a, b *Journal) string { return journal.Diff(a, b) }

// AuditJournal replays a journal through the given auditors and returns
// every violation found, ordered by journal sequence.
func AuditJournal(j *Journal, auds ...Auditor) []Violation { return audit.Run(j, auds...) }

// CompareCommitSets returns the transactions committed in exactly one of
// the two journals — the cross-architecture consistency check of the
// distributed experiments.
func CompareCommitSets(a, b *Journal) (onlyA, onlyB []int64) {
	return audit.CompareCommitSets(a, b)
}

// managerNames maps protocol letters to lock-manager names, which key
// the invariant selection in the audit package.
var managerNames = map[Protocol]string{
	Ceiling:           "PCP",
	CeilingExclusive:  "PCP-X",
	TwoPLPriority:     "2PL-P",
	TwoPL:             "2PL",
	TwoPLInherit:      "2PL-PI",
	TwoPLHighPriority: "2PL-HP",
	TwoPLDetect:       "2PL-DD",
	TimestampOrdering: "TO",
	TwoPLConditional:  "2PL-CR",
}

// AuditorsForProtocol returns the invariant auditors applicable to a
// single-site run of the protocol (empty Protocol means Ceiling, as in
// RunSingleSite).
func AuditorsForProtocol(p Protocol) ([]Auditor, error) {
	if p == "" {
		p = Ceiling
	}
	name, ok := managerNames[p]
	if !ok {
		return nil, fmt.Errorf("rtlock: unknown protocol %q", p)
	}
	return audit.ForManager(name), nil
}

// AuditorsForDistributed returns the invariant auditors applicable to a
// distributed run under the global or local ceiling architecture.
func AuditorsForDistributed(global bool) []Auditor {
	if global {
		return audit.ForApproach("global")
	}
	return audit.ForApproach("local")
}
